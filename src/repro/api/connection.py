"""DB-API connections: one :func:`connect` for every repro entry point.

A :class:`Connection` owns a *target* — a thin adapter giving cursors one
``run(operation, parameters)`` call regardless of what actually executes the
statement:

* :class:`_GatewayTarget` — a :class:`~repro.gateway.session.GatewaySession`;
  the production path: statements are prepared once (fingerprint + parse
  cached), compiled artifacts come from the gateway's rewrite cache keyed on
  the *parameterized* text, so one compilation serves every binding,
* :class:`_MTConnectionTarget` — a direct
  :class:`~repro.core.client.MTConnection` (full pipeline per statement, no
  cache),
* :class:`_BackendTarget` — a bare execution backend: plain SQL with bind
  parameters, no MTSQL rewrite at all.

Transactions: the engine and cluster backends are autocommit by design (the
paper's middleware relays statements, it does not manage transactions), so
:meth:`Connection.commit` is a documented no-op and
:meth:`Connection.rollback` raises
:class:`~repro.errors.NotSupportedError` — silently "rolling back" work that
is already durable would be a correctness trap.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Optional, Union

from ..backends import Backend, BackendConnection, create_backend
from ..errors import BackendError, NotSupportedError
from ..result import ExecuteResult, RowStream
from ..sql import ast
from ..sql.params import resolve_parameters, statement_parameters
from ..sql.parser import parse_submitted_statement
from .cursor import Cursor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.client import MTConnection
    from ..core.middleware import MTBase
    from ..gateway.gateway import QueryGateway
    from ..gateway.session import GatewaySession

RunResult = Union[RowStream, ExecuteResult]


class _GatewayTarget:
    """Cursor executions through a gateway session (cached, parameterized)."""

    #: retained prepared handles per connection; a literal-churn workload
    #: (every statement a distinct spelling) must not grow without bound
    MAX_PREPARED = 256

    def __init__(self, session: "GatewaySession", owned: bool) -> None:
        self._session = session
        self._owned = owned
        # statement text -> gateway prepared handle (LRU): repeated cursor
        # executions skip even the fingerprint lex.  The map is guarded
        # defensively (threadsafety is 1, but the gateway path is the one
        # target that can tolerate a shared connection).
        self._handles: "OrderedDict[str, int]" = OrderedDict()
        self._handles_lock = threading.Lock()

    @property
    def description(self) -> str:
        """Human-readable target description (``Connection.__repr__``)."""
        return f"gateway session {self._session.session_id} (client {self._session.client})"

    def run(self, operation: str, parameters: Optional[Any]) -> RunResult:
        """Prepare-once, execute-many through the session's cache."""
        with self._handles_lock:
            handle = self._handles.get(operation)
            if handle is not None:
                self._handles.move_to_end(operation)
        if handle is None:
            handle = self._session.prepare(operation)
            with self._handles_lock:
                known = self._handles.get(operation)
                if known is not None:  # lost a prepare race: keep one handle
                    self._session.close_prepared(handle)
                    handle = known
                else:
                    self._handles[operation] = handle
                    while len(self._handles) > self.MAX_PREPARED:
                        _, evicted = self._handles.popitem(last=False)
                        self._session.close_prepared(evicted)
        return self._session.execute_incremental(handle, parameters=parameters)

    def close(self) -> None:
        """Drop prepared handles; release the session if this target made it."""
        with self._handles_lock:
            handles, self._handles = list(self._handles.values()), OrderedDict()
        for handle in handles:
            self._session.close_prepared(handle)
        if self._owned:
            self._session.close()


class _MTConnectionTarget:
    """Cursor executions through a direct (uncached) MTBase client connection."""

    def __init__(self, connection: "MTConnection") -> None:
        self._connection = connection

    @property
    def description(self) -> str:
        """Human-readable target description (``Connection.__repr__``)."""
        return f"direct MTConnection (client {self._connection.client})"

    def run(self, operation: str, parameters: Optional[Any]) -> RunResult:
        """Parse, then compile+stream SELECTs / execute everything else."""
        statement = parse_submitted_statement(operation)
        if isinstance(statement, ast.Select):
            return self._connection.query_stream(statement, parameters=parameters)
        return self._connection.execute(statement, parameters=parameters)

    def close(self) -> None:
        """Nothing owned: the MTConnection belongs to the caller."""


class _BackendTarget:
    """Cursor executions straight against an execution backend (plain SQL)."""

    def __init__(
        self, connection: BackendConnection, owned_backend: Optional[Backend]
    ) -> None:
        self._connection = connection
        self._owned_backend = owned_backend

    @property
    def description(self) -> str:
        """Human-readable target description (``Connection.__repr__``)."""
        return f"backend {self._connection.name!r}"

    def run(self, operation: str, parameters: Optional[Any]) -> RunResult:
        """Parse, resolve bindings, stream SELECTs / execute the rest."""
        statement = parse_submitted_statement(operation)
        values = resolve_parameters(statement_parameters(statement), parameters)
        if isinstance(statement, ast.Select):
            return self._connection.execute_stream(
                statement, parameters=values or None
            )
        return self._connection.execute(statement, parameters=values or None)

    def close(self) -> None:
        """Dispose of the backend if :func:`connect` created it from a spec."""
        if self._owned_backend is not None:
            self._owned_backend.close()


class Connection:
    """A PEP 249 connection over one repro execution target.

    Create via :func:`connect`.  Connections hand out :class:`Cursor` objects
    and close their target (and any open cursors) on :meth:`close`; they are
    context managers closing on exit.
    """

    def __init__(self, target) -> None:
        self._target = target
        self._cursors: list[Cursor] = []
        self._closed = False

    # -- cursors -------------------------------------------------------------

    def cursor(self) -> Cursor:
        """A new cursor over this connection's target."""
        self._check_open()
        cursor = Cursor(self)
        self._cursors.append(cursor)
        return cursor

    def _run(self, operation: str, parameters: Optional[Any]) -> RunResult:
        """Execute one statement on the target (cursor back door)."""
        self._check_open()
        return self._target.run(operation, parameters)

    def _forget(self, cursor: Cursor) -> None:
        """Drop a closed cursor from the tracking list (idempotent)."""
        if cursor in self._cursors:
            self._cursors.remove(cursor)

    # -- transactions --------------------------------------------------------

    def commit(self) -> None:
        """No-op: every repro backend is autocommit.

        The middleware relays statements to the DBMS as they arrive (the
        paper's design); there is no pending transaction to make durable, so
        PEP 249's mandatory ``commit`` succeeds trivially.
        """
        self._check_open()

    def rollback(self) -> None:
        """Unsupported: work is already durable when a statement returns.

        Raising is the honest choice — a silent no-op would let callers
        believe autocommitted changes were undone.
        """
        self._check_open()
        raise NotSupportedError(
            "rollback is not supported: repro backends are autocommit, so "
            "there is no pending transaction to undo"
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every open cursor and release the target; idempotent."""
        if self._closed:
            return
        self._closed = True
        for cursor in list(self._cursors):
            cursor.close()
        self._cursors.clear()
        self._target.close()

    def _check_open(self) -> None:
        if self._closed:
            raise BackendError("this DB-API connection is closed")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Connection({self._target.description}, {state})"


def connect(
    target,
    client: Optional[int] = None,
    optimization: Optional[str] = None,
    scope=None,
    profile: str = "postgres",
) -> Connection:
    """Open a PEP 249 :class:`Connection` over any repro entry point.

    ``target`` selects the execution path:

    * :class:`~repro.core.middleware.MTBase` — a direct client connection for
      tenant ``client`` (required), full pipeline per statement,
    * :class:`~repro.gateway.gateway.QueryGateway` — a gateway session for
      tenant ``client`` (required); the cached, production path,
    * an existing :class:`~repro.gateway.session.GatewaySession` or
      :class:`~repro.core.client.MTConnection` — wrapped as-is (``scope``
      applies, ``client``/``optimization`` must be unset),
    * a ``"server://host:port"`` spec — a network session against a
      :class:`~repro.server.ReproServer` for tenant ``client`` (required);
      the same prepared-statement/cursor surface, over the wire,
    * a :class:`~repro.backends.Backend`, a
      :class:`~repro.backends.BackendConnection` or a backend spec string
      (``"engine"``, ``"sqlite"``, ``"sharded:2"``) — plain SQL without the
      MTSQL rewrite; a spec-created backend is owned and disposed on
      ``close()``.

    ``optimization`` and ``scope`` mean the same as on
    ``MTBase.connect``/``QueryGateway.session``; ``profile`` only applies
    when a backend is created from a spec string.

    When the ``REPRO_API_VIA_SERVER`` environment variable is ``1``,
    middleware and gateway targets are transparently fronted by an
    in-process loopback :class:`~repro.server.ReproServer` — the connection
    then runs over a real TCP socket and the frame protocol with identical
    semantics (see :mod:`repro.server.loopback`).
    """
    from ..core.client import MTConnection as _MTConnection
    from ..core.middleware import MTBase as _MTBase
    from ..gateway.gateway import QueryGateway as _QueryGateway
    from ..gateway.session import GatewaySession as _GatewaySession

    if isinstance(target, _QueryGateway):
        if client is None:
            raise BackendError("connect(gateway) requires a client tenant id")
        if _via_loopback_server():
            return _server_connection(target, client, optimization, scope)
        session = target.session(client, optimization=optimization, scope=scope)
        return Connection(_GatewayTarget(session, owned=True))
    if isinstance(target, _MTBase):
        if client is None:
            raise BackendError("connect(middleware) requires a client tenant id")
        if _via_loopback_server():
            return _server_connection(target, client, optimization, scope)
        connection = target.connect(client, optimization=optimization)
        if scope is not None:
            connection.set_scope(scope)
        return Connection(_MTConnectionTarget(connection))
    if isinstance(target, str) and target.startswith("server://"):
        if client is None:
            raise BackendError("connect(server://...) requires a client tenant id")
        host, port = _parse_server_spec(target)
        from ..server.client import SyncSession

        session = SyncSession(
            host, port, client, scope=scope, optimization=optimization
        )
        return Connection(_GatewayTarget(session, owned=True))
    if isinstance(target, _GatewaySession):
        _reject_routing_args("an existing gateway session", client, optimization)
        if scope is not None:
            target.set_scope(scope)
        return Connection(_GatewayTarget(target, owned=False))
    if isinstance(target, _MTConnection):
        _reject_routing_args("an existing MTConnection", client, optimization)
        if scope is not None:
            target.set_scope(scope)
        return Connection(_MTConnectionTarget(target))
    if isinstance(target, str):
        # validate before building: a rejected call must not leave a live
        # backend (temp database file, open connections) behind
        _reject_routing_args("a bare backend", client, optimization, scope)
        backend = create_backend(target, profile=profile)
        return Connection(_BackendTarget(backend.connect(), owned_backend=backend))
    if isinstance(target, Backend):
        _reject_routing_args("a bare backend", client, optimization, scope)
        return Connection(_BackendTarget(target.connect(), owned_backend=None))
    if isinstance(target, BackendConnection):
        _reject_routing_args("a bare backend", client, optimization, scope)
        return Connection(_BackendTarget(target, owned_backend=None))
    raise BackendError(
        f"connect() cannot front a {type(target).__name__}; expected an MTBase, "
        f"QueryGateway, GatewaySession, MTConnection, Backend(Connection) or a "
        f"backend spec string"
    )


def _via_loopback_server() -> bool:
    """Whether ``REPRO_API_VIA_SERVER`` reroutes through a loopback server.

    A membership probe (not a value read — the env-knob linter's rule)
    keeps the common case import-free; the strict parse lives in
    :func:`repro.server.loopback.loopback_enabled`.
    """
    if "REPRO_API_VIA_SERVER" not in os.environ:
        return False  # the common case stays import-free
    from ..server.loopback import loopback_enabled

    return loopback_enabled()


def _server_connection(target, client, optimization, scope) -> Connection:
    """Front ``target`` with its loopback server and connect through it."""
    from ..server.client import SyncSession
    from ..server.loopback import ensure_loopback

    host, port = ensure_loopback(target)
    session = SyncSession(host, port, client, scope=scope, optimization=optimization)
    return Connection(_GatewayTarget(session, owned=True))


def _parse_server_spec(spec: str) -> tuple[str, int]:
    """Split ``server://host:port`` into its address pair (strictly)."""
    address = spec[len("server://"):]
    host, separator, port_text = address.rpartition(":")
    if not separator or not host:
        raise BackendError(
            f"malformed server spec {spec!r}; expected server://host:port"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise BackendError(
            f"malformed server spec {spec!r}: {port_text!r} is not a port"
        ) from None
    if not 0 < port <= 65535:
        raise BackendError(
            f"malformed server spec {spec!r}: port must be 1-65535"
        )
    return host, port


def _reject_routing_args(label: str, client, optimization, scope=None) -> None:
    """Refuse routing arguments that the chosen target cannot honour."""
    if client is not None or optimization is not None:
        raise BackendError(
            f"connect() over {label} does not accept client/optimization — "
            f"they are fixed by the target"
        )
    if scope is not None:
        raise BackendError(
            f"connect() over {label} does not accept a scope — it has no "
            f"MTSQL session"
        )
