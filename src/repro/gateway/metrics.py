"""Latency/throughput and load accounting for the serving layers.

A :class:`LatencyRecorder` collects per-statement wall-clock durations from
many worker threads; :func:`summarize` condenses them into the aggregate the
reports print (mean / p50 / p95 / p99 / max and total statement count).

A :class:`LoadGauge` tracks *instantaneous* load — requests in flight and
requests queued, with their peaks — so the thread-pool
:class:`~repro.gateway.executor.ConcurrentExecutor` and the network tier's
admission controller (:mod:`repro.server.admission`) report comparable
numbers: the same gauge type backs both.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate view of a latency sample (all values in seconds)."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    def describe(self, unit_scale: float = 1e3, unit: str = "ms") -> str:
        return (
            f"{self.count} statements, mean {self.mean * unit_scale:.2f}{unit}, "
            f"p50 {self.p50 * unit_scale:.2f}{unit}, p95 {self.p95 * unit_scale:.2f}{unit}, "
            f"p99 {self.p99 * unit_scale:.2f}{unit}, max {self.max * unit_scale:.2f}{unit}"
        )


def summarize(latencies: list[float]) -> LatencySummary:
    if not latencies:
        return LatencySummary(
            count=0, total=0.0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, max=0.0
        )
    ordered = sorted(latencies)
    total = sum(ordered)
    return LatencySummary(
        count=len(ordered),
        total=total,
        mean=total / len(ordered),
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        p99=percentile(ordered, 0.99),
        max=ordered[-1],
    )


@dataclass(frozen=True)
class LoadSnapshot:
    """Point-in-time load reading of a :class:`LoadGauge`."""

    in_flight: int
    queued: int
    peak_in_flight: int
    peak_queued: int

    def describe(self) -> str:
        return (
            f"in-flight {self.in_flight} (peak {self.peak_in_flight}), "
            f"queued {self.queued} (peak {self.peak_queued})"
        )


class LoadGauge:
    """Thread-safe in-flight/queue-depth gauge with peak tracking.

    ``enqueue``/``dequeue`` bracket the time a request waits for capacity;
    ``enter``/``exit`` bracket its actual execution.  Both the thread-pool
    executor and the asyncio server's admission controller update one of
    these per request, which is what makes their load numbers comparable.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._in_flight = 0
        self._queued = 0
        self._peak_in_flight = 0
        self._peak_queued = 0

    def enqueue(self) -> None:
        """A request started waiting for an execution slot."""
        with self._lock:
            self._queued += 1
            self._peak_queued = max(self._peak_queued, self._queued)

    def dequeue(self) -> None:
        """A waiting request left the queue (admitted or shed)."""
        with self._lock:
            self._queued -= 1

    def enter(self) -> None:
        """A request began executing."""
        with self._lock:
            self._in_flight += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)

    def exit(self) -> None:
        """A request finished executing (successfully or not)."""
        with self._lock:
            self._in_flight -= 1

    def snapshot(self) -> LoadSnapshot:
        """A consistent reading of the current and peak load."""
        with self._lock:
            return LoadSnapshot(
                in_flight=self._in_flight,
                queued=self._queued,
                peak_in_flight=self._peak_in_flight,
                peak_queued=self._peak_queued,
            )


class LatencyRecorder:
    """Thread-safe collector of per-statement latencies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: list[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def extend(self, seconds: list[float]) -> None:
        with self._lock:
            self._latencies.extend(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._latencies)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._latencies)

    def summary(self) -> LatencySummary:
        return summarize(self.values())
