"""Latency/throughput accounting for the gateway's concurrent executor.

A :class:`LatencyRecorder` collects per-statement wall-clock durations from
many worker threads; :func:`summarize` condenses them into the aggregate the
reports print (mean / p50 / p95 / max and total statement count).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = fraction * (len(sorted_values) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_values[low]
    weight = rank - low
    return sorted_values[low] * (1.0 - weight) + sorted_values[high] * weight


@dataclass(frozen=True)
class LatencySummary:
    """Aggregate view of a latency sample (all values in seconds)."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float
    max: float

    def describe(self, unit_scale: float = 1e3, unit: str = "ms") -> str:
        return (
            f"{self.count} statements, mean {self.mean * unit_scale:.2f}{unit}, "
            f"p50 {self.p50 * unit_scale:.2f}{unit}, p95 {self.p95 * unit_scale:.2f}{unit}, "
            f"max {self.max * unit_scale:.2f}{unit}"
        )


def summarize(latencies: list[float]) -> LatencySummary:
    if not latencies:
        return LatencySummary(count=0, total=0.0, mean=0.0, p50=0.0, p95=0.0, max=0.0)
    ordered = sorted(latencies)
    total = sum(ordered)
    return LatencySummary(
        count=len(ordered),
        total=total,
        mean=total / len(ordered),
        p50=percentile(ordered, 0.50),
        p95=percentile(ordered, 0.95),
        max=ordered[-1],
    )


class LatencyRecorder:
    """Thread-safe collector of per-statement latencies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latencies: list[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(seconds)

    def extend(self, seconds: list[float]) -> None:
        with self._lock:
            self._latencies.extend(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._latencies)

    def values(self) -> list[float]:
        with self._lock:
            return list(self._latencies)

    def summary(self) -> LatencySummary:
        return summarize(self.values())
