"""The query gateway: caching, concurrent serving in front of MTBase.

:class:`QueryGateway` is the traffic-facing entry point the ROADMAP's
"millions of users" north star asks for.  It owns

* one shared :class:`~repro.gateway.cache.RewriteCache` (statement info +
  rewritten plans) for all sessions,
* the per-tenant :class:`~repro.gateway.session.GatewaySession` objects,
* a :class:`~repro.gateway.executor.ConcurrentExecutor` for batch traffic.

The gateway subscribes to the middleware's metadata-change signal, so any
DDL, GRANT/REVOKE, tenant registration or conversion-pair registration
flushes the cache before the next statement can observe a stale rewrite.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Union

from ..core.middleware import MTBase
from ..core.optimizer.levels import OptimizationLevel
from .cache import CacheStats, RewriteCache
from .executor import ConcurrentExecutor, ExecutionReport, SessionBatch
from .session import GatewaySession


class QueryGateway:
    """A multi-tenant serving layer wrapping one :class:`MTBase` instance."""

    def __init__(
        self,
        middleware: MTBase,
        cache_size: int = 256,
        max_workers: Optional[int] = None,
    ) -> None:
        self.middleware = middleware
        self.cache = RewriteCache(
            capacity=cache_size,
            version_source=lambda: middleware.metadata_version,
        )
        self.executor = ConcurrentExecutor(max_workers=max_workers)
        self._sessions: list[GatewaySession] = []
        self._next_session_id = 1
        self._lock = threading.Lock()
        self._listener = middleware.on_metadata_change(self._on_metadata_change)
        self._closed = False

    # -- sessions -----------------------------------------------------------------

    def session(
        self,
        ttid: int,
        optimization: Optional[Union[str, OptimizationLevel]] = None,
        scope=None,
        backend=None,
    ) -> GatewaySession:
        """Open a serving session for tenant ``ttid``.

        ``backend`` routes the session to an alternate execution backend (a
        replica of the middleware's data); the rewrite cache keys entries on
        the backend's dialect, so differently-routed sessions never share a
        cached plan.
        """
        connection = self.middleware.connect(ttid, optimization=optimization, backend=backend)
        if scope is not None:
            connection.set_scope(scope)
        with self._lock:
            session = GatewaySession(self, connection, self._next_session_id)
            self._next_session_id += 1
            self._sessions.append(session)
            return session

    @property
    def sessions(self) -> list[GatewaySession]:
        """Snapshot of the currently registered sessions."""
        with self._lock:
            return list(self._sessions)

    def release(self, session: GatewaySession) -> None:
        """Forget a session (long-running gateways would otherwise accumulate
        one session object per connect forever); idempotent."""
        with self._lock:
            if session in self._sessions:
                self._sessions.remove(session)

    # -- batch execution ----------------------------------------------------------

    def run_concurrent(self, batches: Sequence[SessionBatch]) -> ExecutionReport:
        """Dispatch per-session statement batches over the thread pool."""
        return self.executor.run(batches)

    # -- cache maintenance ---------------------------------------------------------

    def _on_metadata_change(self, reason: str) -> None:
        self.cache.invalidate(reason=reason)

    def invalidate_cache(self, reason: str = "manual") -> int:
        """Flush the rewrite cache by hand; returns the dropped entry count."""
        return self.cache.invalidate(reason=reason)

    @property
    def cache_stats(self) -> CacheStats:
        """A consistent snapshot of the rewrite-cache counters."""
        return self.cache.stats_snapshot()

    def close(self) -> None:
        """Detach from the middleware and disable the cache.

        A detached cache would no longer see invalidations, so it is flushed
        and disabled: sessions still held by callers keep working, they just
        pay the cold path from here on.
        """
        if not self._closed:
            self.middleware.remove_metadata_listener(self._listener)
            self.cache.disable()
            self._closed = True

    def __enter__(self) -> "QueryGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.cache.stats
        return (
            f"QueryGateway(sessions={len(self._sessions)}, cache={len(self.cache)}/"
            f"{self.cache.capacity}, hit_rate={stats.hit_rate:.1%}, "
            f"invalidations={stats.invalidations})"
        )
