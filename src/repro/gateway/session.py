"""Per-tenant gateway sessions with a prepared-statement API.

A :class:`GatewaySession` wraps an :class:`~repro.core.client.MTConnection`
and routes SELECT statements through the gateway's rewrite cache:

* **cold path** — fingerprint, parse, resolve the scope to ``D`` and prune it
  to ``D'``, compile through the middleware's staged pipeline, cache the
  whole :class:`~repro.compile.CompiledQuery` artifact, execute (exactly the
  connection's own pipeline, so results are byte-identical),
* **warm path** — fingerprint (a lex), resolve ``D'`` from the cached table
  list, fetch the compiled artifact and execute.  Parse, compilation *and*
  shard planning (the artifact memoizes the cluster plan) are skipped
  entirely — zero compilations on a warm hit.

Scope resolution and privilege pruning are **never** cached: ``D'`` is
recomputed per execution and is part of the cache key, so a session that
changes its scope (or loses a privilege) can never be served a stale plan.

Non-SELECT statements (DML, DDL, GRANT/REVOKE, SET SCOPE) are delegated to
the underlying connection unchanged; DDL and DCL trigger the middleware's
metadata-change signal, which flushes the cache.

Each session serializes its own statements with a lock (the paper's client
connections are single-threaded too); *different* sessions execute
concurrently — see :mod:`repro.gateway.executor`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..errors import MTSQLError
from ..result import QueryResult
from ..sql import ast
from ..sql.parser import parse_statement
from .cache import CacheKey, StatementInfo
from .fingerprint import Fingerprint, fingerprint_statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.client import MTConnection
    from ..core.scope import Scope
    from .gateway import QueryGateway


@dataclass(frozen=True)
class PreparedStatement:
    """A client-side statement handle: raw text plus its fingerprint."""

    handle: int
    text: str
    fingerprint: Fingerprint


@dataclass
class SessionStats:
    """Per-session execution counters."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    delegated: int = 0


class GatewaySession:
    """One tenant's serving session: an MTConnection behind the rewrite cache."""

    def __init__(self, gateway: "QueryGateway", connection: "MTConnection", session_id: int) -> None:
        self.gateway = gateway
        self.connection = connection
        self.session_id = session_id
        self.stats = SessionStats()
        self._prepared: dict[int, PreparedStatement] = {}
        self._next_handle = 1
        self._lock = threading.RLock()

    # -- connection surface -----------------------------------------------------

    @property
    def client(self) -> int:
        """The session's tenant C."""
        return self.connection.client

    @property
    def scope(self) -> "Scope":
        """The session's current scope (its data set D)."""
        return self.connection.scope

    def set_scope(self, scope) -> None:
        """``SET SCOPE`` for this session (serialized with its statements)."""
        with self._lock:
            self.connection.set_scope(scope)

    def reset_scope(self) -> None:
        """Restore the default scope (D = {C})."""
        with self._lock:
            self.connection.reset_scope()

    # -- prepared statements ----------------------------------------------------

    def prepare(self, sql: str) -> int:
        """Parse ``sql`` once and return a handle for repeated execution."""
        with self._lock:
            fingerprint = fingerprint_statement(sql)
            self._statement_info(sql, fingerprint)  # parse eagerly, fail fast
            handle = self._next_handle
            self._next_handle += 1
            self._prepared[handle] = PreparedStatement(
                handle=handle, text=sql, fingerprint=fingerprint
            )
            return handle

    def close_prepared(self, handle: int) -> None:
        """Drop one prepared-statement handle (idempotent)."""
        with self._lock:
            self._prepared.pop(handle, None)

    def close(self) -> None:
        """Release the session: drop prepared statements and detach from the gateway."""
        with self._lock:
            self._prepared.clear()
        self.gateway.release(self)

    # -- execution ---------------------------------------------------------------

    def execute(self, statement: Union[str, int], scope=None):
        """Execute one MTSQL statement (text or a prepared handle).

        ``scope`` optionally switches the session scope first, atomically with
        the execution (convenient for multi-scope workloads).
        """
        with self._lock:
            if scope is not None:
                self.connection.set_scope(scope)
            if isinstance(statement, int):
                try:
                    prepared = self._prepared[statement]
                except KeyError as exc:
                    raise MTSQLError(f"unknown prepared-statement handle {statement}") from exc
                text, fingerprint = prepared.text, prepared.fingerprint
            else:
                text, fingerprint = statement, fingerprint_statement(statement)
            info = self._statement_info(text, fingerprint)
            if isinstance(info.statement, ast.Select):
                return self._execute_select(info)
            # non-SELECT: the connection pipeline handles DML/DDL/DCL/SET SCOPE
            self.stats.delegated += 1
            self.stats.executed += 1
            return self.connection.execute(info.statement)

    def query(self, statement: Union[str, int], scope=None) -> QueryResult:
        """Execute a SELECT (text or prepared handle) through the cache."""
        result = self.execute(statement, scope=scope)
        if not isinstance(result, QueryResult):
            raise MTSQLError("query() expects a SELECT statement")
        return result

    # -- internals ----------------------------------------------------------------

    def _statement_info(self, text: str, fingerprint: Fingerprint) -> StatementInfo:
        cache = self.gateway.cache
        info = cache.get_info(fingerprint.digest)
        if info is None:
            version = cache.current_version()  # snapshot before reading the schema
            parsed = parse_statement(text)
            tables = tuple(sorted(self.connection.statement_tables(parsed)))
            info = StatementInfo(statement=parsed, tables=tables, fingerprint=fingerprint)
            cache.put_info(fingerprint.digest, info, version=version)
        return info

    def _execute_select(self, info: StatementInfo) -> QueryResult:
        connection = self.connection
        dataset = connection.dataset()
        pruned = connection.prune_dataset(dataset, info.tables, privilege="READ")
        key = CacheKey(
            digest=info.fingerprint.digest,
            client=connection.client,
            dataset=pruned,
            level=connection.optimization,
            dialect=connection.backend.dialect.name,
        )
        cache = self.gateway.cache
        plan = cache.get(key)
        if plan is None:
            version = cache.current_version()  # snapshot before reading metadata
            compiled = connection.compile_resolved(
                info.statement, pruned, tables=info.tables
            )
            plan = cache.put(key, compiled, version=version)
            self.stats.cache_misses += 1
        else:
            self.stats.cache_hits += 1
        self.stats.executed += 1
        connection.last_rewritten = [plan.rewritten]
        # pass D' and the compiled artifact along: a sharded backend prunes
        # its shard fan-out with D' and reuses the artifact's analysis/plan
        return connection.backend.execute_scoped(
            plan.rewritten, dataset=pruned, compiled=plan.compiled
        )

    def __repr__(self) -> str:
        return (
            f"GatewaySession(id={self.session_id}, client={self.client}, "
            f"scope={self.scope.describe()!r}, "
            f"optimization={self.connection.optimization.value}, "
            f"executed={self.stats.executed}, hits={self.stats.cache_hits})"
        )
