"""Per-tenant gateway sessions with a prepared-statement API.

A :class:`GatewaySession` wraps an :class:`~repro.core.client.MTConnection`
and routes SELECT statements through the gateway's rewrite cache:

* **cold path** — fingerprint, parse, resolve the scope to ``D`` and prune it
  to ``D'``, compile through the middleware's staged pipeline, cache the
  whole :class:`~repro.compile.CompiledQuery` artifact, execute (exactly the
  connection's own pipeline, so results are byte-identical),
* **warm path** — fingerprint (a lex), resolve ``D'`` from the cached table
  list, fetch the compiled artifact and execute.  Parse, compilation *and*
  shard planning (the artifact memoizes the cluster plan) are skipped
  entirely — zero compilations on a warm hit.

Statements may carry ``?``/``:name`` **bind parameters**: the cache is keyed
on the *parameterized* fingerprint, so one compiled artifact serves every
binding — values resolve per execution and bind at the backend (natively on
SQLite, by literal substitution on the engine, by pass-through on a
cluster).  This is what makes the cache a true prepared-statement cache.

Scope resolution and privilege pruning are **never** cached: ``D'`` is
recomputed per execution and is part of the cache key, so a session that
changes its scope (or loses a privilege) can never be served a stale plan.

Non-SELECT statements (DML, DDL, GRANT/REVOKE, SET SCOPE) are delegated to
the underlying connection unchanged; DDL and DCL trigger the middleware's
metadata-change signal, which flushes the cache.

Each session serializes its own statements with a lock (the paper's client
connections are single-threaded too); *different* sessions execute
concurrently — see :mod:`repro.gateway.executor`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..errors import InvalidStatementError, LexerError, MTSQLError
from ..result import QueryResult, RowStream
from ..sql import ast
from ..sql.params import (
    ParameterValues,
    bind_parameters,
    resolve_parameters,
    statement_parameters,
)
from ..sql.parser import parse_submitted_statement
from .cache import CacheKey, StatementInfo
from .fingerprint import Fingerprint, fingerprint_statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.client import MTConnection
    from ..core.scope import Scope
    from .gateway import QueryGateway


@dataclass(frozen=True)
class PreparedStatement:
    """A client-side statement handle: raw text plus its fingerprint."""

    handle: int
    text: str
    fingerprint: Fingerprint


@dataclass
class SessionStats:
    """Per-session execution counters."""

    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    delegated: int = 0


class GatewaySession:
    """One tenant's serving session: an MTConnection behind the rewrite cache."""

    def __init__(self, gateway: "QueryGateway", connection: "MTConnection", session_id: int) -> None:
        self.gateway = gateway
        self.connection = connection
        self.session_id = session_id
        self.stats = SessionStats()
        self._prepared: dict[int, PreparedStatement] = {}
        self._next_handle = 1
        self._lock = threading.RLock()

    # -- connection surface -----------------------------------------------------

    @property
    def client(self) -> int:
        """The session's tenant C."""
        return self.connection.client

    @property
    def scope(self) -> "Scope":
        """The session's current scope (its data set D)."""
        return self.connection.scope

    def set_scope(self, scope) -> None:
        """``SET SCOPE`` for this session (serialized with its statements)."""
        with self._lock:
            self.connection.set_scope(scope)

    def reset_scope(self) -> None:
        """Restore the default scope (D = {C})."""
        with self._lock:
            self.connection.reset_scope()

    # -- prepared statements ----------------------------------------------------

    def prepare(self, sql: str) -> int:
        """Parse ``sql`` once and return a handle for repeated execution.

        Unparsable SQL raises :class:`~repro.errors.InvalidStatementError`
        with the offending fragment — the same error every other
        statement-accepting entry point raises.
        """
        with self._lock:
            fingerprint = self._fingerprint(sql)
            self._statement_info(sql, fingerprint)  # parse eagerly, fail fast
            handle = self._next_handle
            self._next_handle += 1
            self._prepared[handle] = PreparedStatement(
                handle=handle, text=sql, fingerprint=fingerprint
            )
            return handle

    def close_prepared(self, handle: int) -> None:
        """Drop one prepared-statement handle (idempotent)."""
        with self._lock:
            self._prepared.pop(handle, None)

    def close(self) -> None:
        """Release the session: drop prepared statements and detach from the gateway."""
        with self._lock:
            self._prepared.clear()
        self.gateway.release(self)

    # -- execution ---------------------------------------------------------------

    def execute(self, statement: Union[str, int], scope=None, parameters=None):
        """Execute one MTSQL statement (text or a prepared handle).

        ``scope`` optionally switches the session scope first, atomically with
        the execution (convenient for multi-scope workloads).  ``parameters``
        bind a parameterized statement's ``?``/``:name`` placeholders — a
        positional sequence or a ``{name: value}`` mapping.  The cache is
        keyed on the *parameterized* text, so one compiled artifact serves
        every binding.
        """
        return self._run(statement, scope, parameters, stream=False)

    def execute_stream(
        self, statement: Union[str, int], scope=None, parameters=None
    ) -> RowStream:
        """Execute a SELECT through the cache as an incremental row stream.

        The warm path is identical to :meth:`execute` up to the backend call,
        which goes through ``execute_stream`` instead — on backends with a
        streaming fast path the first rows arrive before the result set is
        materialized.
        """
        with self._lock:
            info, values = self._prepare_execution(statement, scope, parameters)
            if not isinstance(info.statement, ast.Select):
                raise MTSQLError("execute_stream() expects a SELECT statement")
            return self._execute_select(info, values, stream=True)

    def execute_incremental(self, statement: Union[str, int], scope=None, parameters=None):
        """Statement-kind-agnostic streaming execution (the DB-API entry).

        SELECTs return a :class:`~repro.result.RowStream` (exactly
        :meth:`execute_stream`); every other statement kind executes through
        the connection pipeline and returns its ordinary result — so a cursor
        can submit any statement without knowing its kind up front.
        """
        return self._run(statement, scope, parameters, stream=True)

    def _run(
        self,
        statement: Union[str, int],
        scope,
        parameters: Optional[ParameterValues],
        stream: bool,
    ):
        """Shared execution body of :meth:`execute`/:meth:`execute_incremental`."""
        with self._lock:
            info, values = self._prepare_execution(statement, scope, parameters)
            if isinstance(info.statement, ast.Select):
                return self._execute_select(info, values, stream=stream)
            # non-SELECT: the connection pipeline handles DML/DDL/DCL/SET
            # SCOPE; parameters bind by literal substitution because the DML
            # rewrite routes on concrete values (per-owner INSERTs)
            self.stats.delegated += 1
            self.stats.executed += 1
            bound = (
                bind_parameters(info.statement, values) if values else info.statement
            )
            return self.connection.execute(bound)

    def query(self, statement: Union[str, int], scope=None, parameters=None) -> QueryResult:
        """Execute a SELECT (text or prepared handle) through the cache."""
        result = self.execute(statement, scope=scope, parameters=parameters)
        if not isinstance(result, QueryResult):
            raise MTSQLError("query() expects a SELECT statement")
        return result

    # -- internals ----------------------------------------------------------------

    def _prepare_execution(
        self,
        statement: Union[str, int],
        scope,
        parameters: Optional[ParameterValues],
    ) -> tuple[StatementInfo, tuple]:
        """Shared front half of execute/execute_stream: scope, info, bindings."""
        if scope is not None:
            self.connection.set_scope(scope)
        if isinstance(statement, int):
            try:
                prepared = self._prepared[statement]
            except KeyError as exc:
                raise MTSQLError(f"unknown prepared-statement handle {statement}") from exc
            text, fingerprint = prepared.text, prepared.fingerprint
        else:
            text, fingerprint = statement, self._fingerprint(statement)
        info = self._statement_info(text, fingerprint)
        values = resolve_parameters(info.parameters, parameters)
        return info, values

    @staticmethod
    def _fingerprint(text: str) -> Fingerprint:
        try:
            return fingerprint_statement(text)
        except LexerError as exc:
            raise InvalidStatementError.from_sql(text, exc) from exc

    def _statement_info(self, text: str, fingerprint: Fingerprint) -> StatementInfo:
        cache = self.gateway.cache
        info = cache.get_info(fingerprint.digest)
        if info is None:
            version = cache.current_version()  # snapshot before reading the schema
            parsed = parse_submitted_statement(text)
            tables = tuple(sorted(self.connection.statement_tables(parsed)))
            info = StatementInfo(
                statement=parsed,
                tables=tables,
                fingerprint=fingerprint,
                parameters=statement_parameters(parsed),
            )
            cache.put_info(fingerprint.digest, info, version=version)
        return info

    def _execute_select(
        self, info: StatementInfo, parameters: tuple = (), stream: bool = False
    ):
        connection = self.connection
        dataset = connection.dataset()
        pruned = connection.prune_dataset(dataset, info.tables, privilege="READ")
        key = CacheKey(
            digest=info.fingerprint.digest,
            client=connection.client,
            dataset=pruned,
            level=connection.optimization,
            dialect=connection.backend.dialect.name,
        )
        cache = self.gateway.cache
        plan = cache.get(key)
        if plan is None:
            version = cache.current_version()  # snapshot before reading metadata
            compiled = connection.compile_resolved(
                info.statement, pruned, tables=info.tables
            )
            plan = cache.put(key, compiled, version=version)
            self.stats.cache_misses += 1
        else:
            self.stats.cache_hits += 1
        self.stats.executed += 1
        connection.last_rewritten = [plan.rewritten]
        # pass D', the bind values and the compiled artifact along: a sharded
        # backend prunes its shard fan-out with D' and reuses the artifact's
        # analysis/plan; parameters bind at the backend (natively where the
        # DBMS supports placeholders, by literal substitution elsewhere)
        if stream:
            return connection.backend.execute_stream(
                plan.rewritten,
                dataset=pruned,
                parameters=parameters or None,
                compiled=plan.compiled,
            )
        return connection.backend.execute_scoped(
            plan.rewritten,
            dataset=pruned,
            parameters=parameters or None,
            compiled=plan.compiled,
        )

    def __repr__(self) -> str:
        return (
            f"GatewaySession(id={self.session_id}, client={self.client}, "
            f"scope={self.scope.describe()!r}, "
            f"optimization={self.connection.optimization.value}, "
            f"executed={self.stats.executed}, hits={self.stats.cache_hits})"
        )
