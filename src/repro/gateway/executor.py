"""Concurrent batch execution across many gateway sessions.

The :class:`ConcurrentExecutor` dispatches per-session statement batches over
a thread pool.  Concurrency is *between* sessions: each session's batch runs
on one worker, in order (and the session's own lock serializes any outside
use of the same session), which mirrors how a fleet of single-threaded
tenant connections hits a real middleware.

The pure-Python engine holds the GIL while interpreting, so threads buy
concurrency (overlapping sessions, fair progress), not CPU parallelism —
the aggregate numbers in :class:`ExecutionReport` are about serving
behaviour, and about how far the rewrite cache drops per-statement latency.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from .metrics import LatencyRecorder, LatencySummary, LoadGauge, LoadSnapshot, summarize
from .session import GatewaySession

#: one unit of work: a session plus the statements it should run, in order
SessionBatch = tuple[GatewaySession, Sequence[Union[str, int]]]


@dataclass
class StatementOutcome:
    """Result (or error) of one statement of one session's batch."""

    session_id: int
    statement: Union[str, int]
    result: object = None
    error: Optional[Exception] = None
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the statement completed without raising."""
        return self.error is None


@dataclass
class ExecutionReport:
    """Aggregate metrics of one concurrent run."""

    outcomes: list[StatementOutcome] = field(default_factory=list)
    elapsed: float = 0.0
    latency: LatencySummary = field(default_factory=lambda: summarize([]))
    #: final gauge reading of the run — the peaks are the interesting part:
    #: peak in-flight is the concurrency actually reached, peak queued the
    #: deepest backlog of batches waiting for a worker
    load: LoadSnapshot = field(
        default_factory=lambda: LoadGauge().snapshot()
    )

    @property
    def statements(self) -> int:
        """Total statements executed in the run."""
        return len(self.outcomes)

    @property
    def errors(self) -> list[StatementOutcome]:
        """The outcomes that raised."""
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def throughput(self) -> float:
        """Completed statements per second of wall-clock time."""
        return self.statements / self.elapsed if self.elapsed > 0 else 0.0

    def outcomes_for(self, session: GatewaySession) -> list[StatementOutcome]:
        """The outcomes belonging to one session's batch."""
        return [o for o in self.outcomes if o.session_id == session.session_id]

    def describe(self) -> str:
        """One-line human-readable run summary."""
        return (
            f"{self.statements} statements in {self.elapsed:.3f}s "
            f"({self.throughput:.1f} stmt/s; {self.latency.describe()}; "
            f"{self.load.describe()}; {len(self.errors)} errors)"
        )


class ConcurrentExecutor:
    """Run batches of session statements over a thread pool."""

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers

    def run(self, batches: Sequence[SessionBatch]) -> ExecutionReport:
        """Execute every batch; per-session order is preserved.

        Statement failures are captured per outcome (``error``), they do not
        abort the run — a misbehaving tenant must not take down the fleet.
        """
        if not batches:
            return ExecutionReport()
        recorder = LatencyRecorder()
        gauge = LoadGauge()
        workers = self.max_workers or min(8, len(batches))
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = []
            for session, statements in batches:
                gauge.enqueue()  # queued until a worker picks the batch up
                futures.append(
                    pool.submit(
                        self._run_batch, session, list(statements), recorder, gauge
                    )
                )
            outcome_lists = [future.result() for future in futures]
        elapsed = time.perf_counter() - started
        outcomes = [outcome for outcomes in outcome_lists for outcome in outcomes]
        return ExecutionReport(
            outcomes=outcomes,
            elapsed=elapsed,
            latency=summarize(recorder.values()),
            load=gauge.snapshot(),
        )

    @staticmethod
    def _run_batch(
        session: GatewaySession,
        statements: list[Union[str, int]],
        recorder: LatencyRecorder,
        gauge: LoadGauge,
    ) -> list[StatementOutcome]:
        gauge.dequeue()
        outcomes: list[StatementOutcome] = []
        for statement in statements:
            gauge.enter()
            began = time.perf_counter()
            try:
                result = session.execute(statement)
                error = None
            except Exception as exc:  # noqa: BLE001 - reported per statement
                result, error = None, exc
            latency = time.perf_counter() - began
            gauge.exit()
            recorder.record(latency)
            outcomes.append(
                StatementOutcome(
                    session_id=session.session_id,
                    statement=statement,
                    result=result,
                    error=error,
                    latency=latency,
                )
            )
        return outcomes
