"""The gateway's rewrite cache.

The middleware pipeline — parse → scope resolution → privilege pruning →
canonical MTSQL→SQL rewrite → optimization passes — runs on every statement
(`benchmarks/test_ablation_rewrite_overhead.py` measures that cost).  The
:class:`RewriteCache` amortizes it across repeat executions:

* a **statement-info cache** maps a fingerprint digest to the parsed AST and
  the tenant-specific tables it touches, so a repeat execution skips the
  parse and the table walk needed for privilege pruning,
* a **plan cache** maps ``(digest, client ttid, resolved D', optimization
  level)`` to the whole :class:`~repro.compile.CompiledQuery` artifact, so a
  repeat execution skips the entire compilation — and, because the artifact
  carries the shardability analysis and memoizes the backend's derived plan,
  a warm hit on a sharded backend skips shard planning too.

The resolved data set ``D'`` is part of the key because the rewritten SQL
embeds it (ttid IN-lists, per-tenant conversion constants); a scope or
privilege change that yields a different ``D'`` naturally misses.  Metadata
changes that alter the rewrite *for the same key* — DDL, GRANT/REVOKE, new
tenants (they flip the "D = all tenants" trivial optimization), conversion
registrations — must invalidate explicitly; :class:`~repro.gateway.gateway.
QueryGateway` subscribes to the middleware's metadata-change signal for
that.

Both maps are LRU with a bounded capacity and are safe to share between
threads (a single re-entrant lock; every operation is a dict move, far
cheaper than the rewrite it saves).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

from ..core.optimizer.levels import OptimizationLevel
from ..sql import ast
from .fingerprint import Fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile.artifact import CompiledQuery
    from ..sql.params import ParameterSlot


@dataclass(frozen=True)
class CacheKey:
    """Identity of one cached rewrite.

    ``dialect`` is the executing backend's dialect name: sessions of one
    gateway may route to different backends, and although the cached value
    is a dialect-neutral AST, sharing entries across dialects would corrupt
    the per-backend hit/invalidation accounting the benchmarks rely on.
    """

    digest: str
    client: int
    dataset: tuple[int, ...]
    level: OptimizationLevel
    dialect: str = "default"


@dataclass(frozen=True)
class StatementInfo:
    """Parse-time facts about a statement, cached per fingerprint digest."""

    statement: ast.Statement
    tables: tuple[str, ...]
    fingerprint: Fingerprint
    #: the statement's bind-parameter slots (empty when unparameterized); the
    #: session resolves client-supplied values against these without
    #: re-walking the AST
    parameters: tuple["ParameterSlot", ...] = ()


@dataclass(frozen=True)
class CachedPlan:
    """One cache entry: a compiled statement ready for the DBMS."""

    #: the full compilation artifact (what the session executes and the
    #: sharded backend memoizes its plan on)
    compiled: "CompiledQuery"
    key: CacheKey

    @property
    def rewritten(self) -> ast.Select:
        """The rewritten statement to execute."""
        return self.compiled.rewritten


@dataclass
class CacheStats:
    """Hit/miss counters, surfaced by the gateway and the benchmarks."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    invalidation_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total plan-cache probes (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """A defensive copy (the reasons dict is mutated in place)."""
        return replace(self, invalidation_reasons=dict(self.invalidation_reasons))


class RewriteCache:
    """Bounded, thread-safe LRU cache for statement info and rewritten plans.

    ``version_source`` (typically ``lambda: middleware.metadata_version``)
    closes the put-after-invalidate race: a writer snapshots the version via
    :meth:`current_version` *before* parsing/rewriting and passes it to
    :meth:`put`/:meth:`put_info`, which reject the entry (under the same lock
    :meth:`invalidate` takes) if the metadata changed in between.  The caller
    still executes its freshly computed plan once — equivalent to a direct
    connection racing the metadata change — but a stale plan can never be
    *cached* past the flush that was meant to remove it.
    """

    def __init__(
        self,
        capacity: int = 256,
        info_capacity: Optional[int] = None,
        version_source: Optional[Callable[[], int]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.info_capacity = info_capacity if info_capacity is not None else 4 * capacity
        self._plans: OrderedDict[CacheKey, CachedPlan] = OrderedDict()
        self._info: OrderedDict[str, StatementInfo] = OrderedDict()
        self._lock = threading.RLock()
        self._version_source = version_source if version_source is not None else (lambda: 0)
        self._disabled = False
        self.stats = CacheStats()

    def current_version(self) -> int:
        """The metadata version to snapshot before computing a cacheable entry."""
        return self._version_source()

    def _version_is_stale(self, version: Optional[int]) -> bool:
        return version is not None and version != self._version_source()

    # -- statement info ---------------------------------------------------------

    def get_info(self, digest: str) -> Optional[StatementInfo]:
        """Cached parse-time facts for a fingerprint digest (LRU-touched)."""
        with self._lock:
            info = self._info.get(digest)
            if info is not None:
                self._info.move_to_end(digest)
            return info

    def put_info(self, digest: str, info: StatementInfo, version: Optional[int] = None) -> None:
        """Cache parse-time facts; rejected when ``version`` is stale."""
        with self._lock:
            if self._disabled or self._version_is_stale(version):
                return
            self._info[digest] = info
            self._info.move_to_end(digest)
            while len(self._info) > self.info_capacity:
                self._info.popitem(last=False)

    # -- rewritten plans --------------------------------------------------------

    def get(self, key: CacheKey) -> Optional[CachedPlan]:
        """Probe the plan cache (counts a hit/miss, LRU-touches on hit)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._plans.move_to_end(key)
            self.stats.hits += 1
            return plan

    def put(
        self, key: CacheKey, compiled: "CompiledQuery", version: Optional[int] = None
    ) -> CachedPlan:
        """Cache a compiled statement; rejected (but returned) when stale."""
        plan = CachedPlan(compiled=compiled, key=key)
        with self._lock:
            if self._disabled or self._version_is_stale(version):
                return plan  # computed from pre-change metadata: execute, don't cache
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.capacity:
                self._plans.popitem(last=False)
                self.stats.evictions += 1
        return plan

    # -- maintenance ------------------------------------------------------------

    def stats_snapshot(self) -> CacheStats:
        """A consistent copy of the counters (taken under the cache lock)."""
        with self._lock:
            return self.stats.snapshot()

    def disable(self) -> None:
        """Flush and permanently disable caching.

        Called when a gateway detaches from the middleware's metadata-change
        signal: without invalidation the cache could silently go stale, so
        orphaned sessions fall back to cold (correct, merely uncached)
        execution instead.
        """
        with self._lock:
            self._disabled = True
            self._plans.clear()
            self._info.clear()

    def invalidate(self, reason: str = "") -> int:
        """Drop every entry (DDL / privilege / tenant metadata changed)."""
        with self._lock:
            dropped = len(self._plans)
            self._plans.clear()
            self._info.clear()
            self.stats.invalidations += 1
            if reason:
                reasons = self.stats.invalidation_reasons
                reasons[reason] = reasons.get(reason, 0) + 1
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __repr__(self) -> str:
        stats = self.stats_snapshot()
        return (
            f"RewriteCache(plans={len(self)}/{self.capacity}, hits={stats.hits}, "
            f"misses={stats.misses}, hit_rate={stats.hit_rate:.1%})"
        )
