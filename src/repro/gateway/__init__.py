"""repro.gateway — a caching, concurrent multi-tenant query gateway.

The serving layer on top of the paper's middleware (Figure 4): statement
fingerprinting, a rewrite cache with LRU eviction and metadata-driven
invalidation, per-tenant sessions with a prepared-statement API, and a
thread-pool executor for concurrent tenant traffic.

Typical use::

    from repro.gateway import QueryGateway

    gateway = QueryGateway(middleware, cache_size=512)
    session = gateway.session(ttid=1, optimization="o4", scope="IN ()")
    handle = session.prepare("SELECT ... FROM ...")
    result = session.execute(handle)          # cold: parse + rewrite + run
    result = session.execute(handle)          # warm: cache hit, run only
    print(gateway.cache_stats.hit_rate)
"""

from .cache import CacheKey, CachedPlan, CacheStats, RewriteCache, StatementInfo
from .executor import ConcurrentExecutor, ExecutionReport, SessionBatch, StatementOutcome
from .fingerprint import Fingerprint, fingerprint_statement
from .gateway import QueryGateway
from .metrics import (
    LatencyRecorder,
    LatencySummary,
    LoadGauge,
    LoadSnapshot,
    percentile,
    summarize,
)
from .session import GatewaySession, PreparedStatement, SessionStats

__all__ = [
    "QueryGateway",
    "GatewaySession",
    "PreparedStatement",
    "SessionStats",
    "ConcurrentExecutor",
    "ExecutionReport",
    "SessionBatch",
    "StatementOutcome",
    "RewriteCache",
    "CacheKey",
    "CachedPlan",
    "CacheStats",
    "StatementInfo",
    "Fingerprint",
    "fingerprint_statement",
    "LatencyRecorder",
    "LatencySummary",
    "LoadGauge",
    "LoadSnapshot",
    "percentile",
    "summarize",
]
