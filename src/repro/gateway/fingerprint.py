"""Statement fingerprinting: normalize SQL text into a rewrite-cache key.

The gateway must decide *without parsing* whether it has already rewritten a
statement.  A :class:`Fingerprint` is therefore computed from the token
stream alone (lexing is an order of magnitude cheaper than a parse + the
canonical rewrite): whitespace and comments vanish, literals are extracted
into a parameter vector, and the remaining tokens form a *template*.

Two digests are derived:

* ``digest`` covers the template *and* the literal values — the cache key.
  Two statements share a ``digest`` exactly when they tokenize identically,
  so serving a cached rewrite for a matching digest is always sound.
* ``template_digest`` covers only the template (literals become ``?``) and
  groups executions of the same statement *shape* for statistics, the way
  `pg_stat_statements` buckets queries.

Normalization is deliberately conservative: identifiers keep their original
spelling (aliases determine result column names, so case-folding them could
change what a client sees).  A statement written with different keyword
casing simply costs one extra cache miss — never a wrong result.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Union

from ..sql import ast
from ..sql.lexer import TokenType, tokenize
from ..sql.printer import to_sql

_SEPARATOR = "\x1f"


@dataclass(frozen=True)
class Fingerprint:
    """The cache identity of one SQL statement."""

    digest: str
    template_digest: str
    template: str
    literals: tuple[str, ...]

    def __repr__(self) -> str:  # keep debug output short: digests are 64 hex chars
        return (
            f"Fingerprint(digest={self.digest[:12]}…, "
            f"template={self.template[:60]!r}, literals={len(self.literals)})"
        )


def _hash(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_statement(statement: Union[str, ast.Node]) -> Fingerprint:
    """Fingerprint SQL text (or an already-parsed AST node).

    AST nodes are printed back to canonical SQL first, so a parsed statement
    and its printed text produce the same fingerprint.
    """
    text = to_sql(statement) if isinstance(statement, ast.Node) else statement
    pieces: list[str] = []
    literals: list[str] = []
    for token in tokenize(text):
        if token.type is TokenType.EOF:
            break
        if token.type in (TokenType.NUMBER, TokenType.STRING):
            marker = "?" if token.type is TokenType.NUMBER else "?s"
            literals.append(token.text)
            pieces.append(marker)
        else:
            pieces.append(token.text)
    template = " ".join(pieces)
    template_digest = _hash(template)
    # length-prefix each literal so different literal vectors can never
    # concatenate to the same byte string (e.g. values containing \x1f)
    literal_blob = "".join(f"{len(literal)}:{literal}{_SEPARATOR}" for literal in literals)
    digest = _hash(template + _SEPARATOR + literal_blob)
    return Fingerprint(
        digest=digest,
        template_digest=template_digest,
        template=template,
        literals=tuple(literals),
    )
