"""Gather-side merging: partial-aggregate combination and final evaluation.

The scatter phase leaves the coordinator with per-shard rows; this module
turns them back into the single-backend answer:

* :class:`PartialAggregateState` / :func:`merge_partial_rows` — combine the
  shards' partial aggregates per group (``SUM``/``COUNT`` add, ``MIN``/
  ``MAX`` keep the extremum, ``AVG`` divides total ``SUM`` by total
  ``COUNT``), preserving SQL NULL semantics (``SUM`` of an all-NULL group is
  NULL, ``AVG`` of an empty group is NULL),
* :class:`MergeEvaluator` — evaluate the query's final SELECT list,
  ``HAVING`` and ``ORDER BY`` expressions over the merged values, mirroring
  the engine's SQL semantics (three-valued logic, NULL propagation, division
  by zero) via the shared :func:`repro.sql.types.sql_equal` /
  :func:`~repro.sql.types.sql_compare` helpers,
* :class:`BatchMergeEvaluator` — the vectorized counterpart: residual
  expressions are rewritten against the merged binding/alias columns and
  compiled *once per statement* into the engine's batch kernels
  (:class:`repro.engine.vector.BatchExpressionCompiler`), then evaluated
  over all merged groups in one pass instead of re-walking the AST (and
  re-printing every node through ``to_sql``) once per group,
* :func:`sort_rows` — the engine's ``ORDER BY`` algorithm (stable per-key
  sorts over :func:`repro.sql.types.sort_key`) on gathered rows.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Optional, Sequence

from ..errors import ExecutionError
from ..sql import ast
from ..sql.printer import to_sql
from ..sql.transform import PartialAggregate
from ..sql.types import Date, sort_key, sql_compare, sql_equal

# ---------------------------------------------------------------------------
# Partial-aggregate states
# ---------------------------------------------------------------------------


class PartialAggregateState:
    """Accumulates one aggregate's per-shard partials into the global value."""

    def __init__(self, spec: PartialAggregate) -> None:
        self.spec = spec
        self._sum: Any = None
        self._count = 0
        self._extremum: Any = None

    def merge(self, row: tuple) -> None:
        """Fold one shard row's partial column(s) into the state."""
        kind = self.spec.kind
        if kind == "avg":
            partial_sum, partial_count = (row[index] for index in self.spec.columns)
            self._add_sum(partial_sum)
            self._count += int(partial_count or 0)
            return
        value = row[self.spec.columns[0]]
        if kind == "sum":
            self._add_sum(value)
        elif kind == "count":
            self._count += int(value or 0)
        elif kind in ("min", "max"):
            if value is None:
                return
            if self._extremum is None:
                self._extremum = value
            elif kind == "min":
                self._extremum = min(self._extremum, value)
            else:
                self._extremum = max(self._extremum, value)
        else:  # pragma: no cover - the split rejects unknown kinds
            raise ExecutionError(f"unknown partial-aggregate kind {kind!r}")

    def _add_sum(self, value: Any) -> None:
        if value is None:
            return
        self._sum = value if self._sum is None else self._sum + value

    def result(self) -> Any:
        """The merged aggregate value (matching single-backend semantics)."""
        kind = self.spec.kind
        if kind == "sum":
            return self._sum
        if kind == "count":
            return self._count
        if kind in ("min", "max"):
            return self._extremum
        # AVG: the engine accumulates into a float and divides by the count
        if self._count == 0:
            return None
        return (self._sum if self._sum is not None else 0.0) / self._count


def merge_partial_rows(
    shard_rows: Iterable[tuple],
    key_width: int,
    partials: Sequence[PartialAggregate],
) -> dict[tuple, list[PartialAggregateState]]:
    """Merge gathered partial rows into per-group aggregate states.

    Groups are keyed on the leading ``key_width`` columns; for a global
    aggregate (no GROUP BY) every shard contributes exactly one row to the
    ``()`` group.
    """
    groups: dict[tuple, list[PartialAggregateState]] = {}
    for row in shard_rows:
        key = tuple(row[:key_width])
        states = groups.get(key)
        if states is None:
            states = [PartialAggregateState(spec) for spec in partials]
            groups[key] = states
        for state in states:
            state.merge(row)
    return groups


# ---------------------------------------------------------------------------
# Final-expression evaluation
# ---------------------------------------------------------------------------


def default_scalar_functions() -> dict[str, Any]:
    """The coordinator's scalar-function registry seed: the engine builtins.

    The optimizer's conversion push-up leaves ``COALESCE`` and constant-arg
    rate look-ups *outside* the aggregates, so the coordinator must evaluate
    them after re-aggregation exactly as a backend would.
    """
    from ..engine.functions import BUILTIN_SCALARS

    return dict(BUILTIN_SCALARS)


class MergeEvaluator:
    """Evaluates residual expressions over merged group/aggregate bindings.

    ``bindings`` maps the printed form of an expression (a group-key text or
    an aggregate-call text) to its merged value; ``aliases`` maps output
    aliases to already-computed SELECT-item values, which is how ``HAVING``
    and ``ORDER BY`` reference the projection; ``functions`` maps scalar
    function names to Python callables (builtins plus registered Python
    UDFs).  Only the node types the planner's evaluability check admits are
    implemented.
    """

    def __init__(
        self,
        bindings: dict[str, Any],
        aliases: Optional[dict[str, Any]] = None,
        functions: Optional[dict[str, Any]] = None,
        parameters: Optional[Sequence[Any]] = None,
    ) -> None:
        self.bindings = bindings
        self.aliases = aliases or {}
        self.functions = functions if functions is not None else {}
        self.parameters = tuple(parameters) if parameters is not None else None

    def evaluate(self, expr: ast.Expression) -> Any:
        """Evaluate one expression tree to a Python value."""
        bound = self.bindings.get(to_sql(expr), _MISSING)
        if bound is not _MISSING:
            return bound
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Parameter):
            if self.parameters is None or not 1 <= expr.index <= len(self.parameters):
                raise ExecutionError(
                    f"merge evaluator has no value for parameter {to_sql(expr)}"
                )
            return self.parameters[expr.index - 1]
        if isinstance(expr, ast.Column):
            if expr.table is None and expr.name.lower() in self.aliases:
                return self.aliases[expr.name.lower()]
            raise ExecutionError(f"unbound merge column {to_sql(expr)!r}")
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._unary(expr)
        if isinstance(expr, ast.Case):
            return self._case(expr)
        if isinstance(expr, ast.IsNull):
            null = self.evaluate(expr.expr) is None
            return not null if expr.negated else null
        if isinstance(expr, ast.Between):
            return self._between(expr)
        if isinstance(expr, ast.InList):
            return self._in_list(expr)
        if isinstance(expr, ast.FunctionCall):
            fn = self.functions.get(expr.name.lower())
            if fn is not None:
                return fn(*(self.evaluate(argument) for argument in expr.args))
        raise ExecutionError(
            f"merge evaluator cannot evaluate {type(expr).__name__}: {to_sql(expr)}"
        )

    # -- operators (mirroring repro.engine.expressions) ----------------------

    def _binary(self, expr: ast.BinaryOp) -> Any:
        operator = expr.op.upper()
        if operator == "AND":
            left, right = self.evaluate(expr.left), self.evaluate(expr.right)
            if left is False or right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if operator == "OR":
            left, right = self.evaluate(expr.left), self.evaluate(expr.right)
            if left is True or right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left, right = self.evaluate(expr.left), self.evaluate(expr.right)
        if operator == "=":
            return sql_equal(left, right)
        if operator == "<>":
            equal = sql_equal(left, right)
            return None if equal is None else not equal
        if operator in ("<", "<=", ">", ">="):
            ordering = sql_compare(left, right)
            if ordering is None:
                return None
            return {
                "<": ordering < 0,
                "<=": ordering <= 0,
                ">": ordering > 0,
                ">=": ordering >= 0,
            }[operator]
        if left is None or right is None:
            return None
        if operator in ("+", "-", "*", "/") and (
            isinstance(left, Date) or isinstance(right, Date)
        ):
            # mirror the engine's date ± interval semantics (an ORDER BY key
            # like ``d + INTERVAL '1' MONTH`` is planner-evaluable)
            from ..engine.expressions import _date_arithmetic

            return _date_arithmetic(left, right, operator)
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            if right == 0:
                raise ExecutionError("division by zero")
            return left / right
        if operator == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left % right
        if operator == "||":
            return f"{left}{right}"
        raise ExecutionError(f"merge evaluator cannot apply operator {expr.op!r}")

    def _unary(self, expr: ast.UnaryOp) -> Any:
        value = self.evaluate(expr.operand)
        if expr.op.upper() == "NOT":
            return None if value is None else not value
        if expr.op == "-":
            return None if value is None else -value
        raise ExecutionError(f"merge evaluator cannot apply operator {expr.op!r}")

    def _case(self, expr: ast.Case) -> Any:
        for when in expr.whens:
            if self.evaluate(when.condition) is True:
                return self.evaluate(when.result)
        if expr.else_result is not None:
            return self.evaluate(expr.else_result)
        return None

    def _between(self, expr: ast.Between) -> Optional[bool]:
        value = self.evaluate(expr.expr)
        low, high = self.evaluate(expr.low), self.evaluate(expr.high)
        if value is None or low is None or high is None:
            return None
        result = sql_compare(value, low) >= 0 and sql_compare(value, high) <= 0
        return not result if expr.negated else result

    def _in_list(self, expr: ast.InList) -> Optional[bool]:
        value = self.evaluate(expr.expr)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item)
            if candidate is None:
                saw_null = True
                continue
            if sql_equal(value, candidate) is True:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated


_MISSING = object()


# ---------------------------------------------------------------------------
# Vectorized final-expression evaluation
# ---------------------------------------------------------------------------


class _UnsupportedResidual(Exception):
    """Internal: the expression must go through the row-mode evaluator.

    Raised during residual rewriting for constructs the batch path cannot
    (or, for error-message parity, must not) compile: node types outside
    :class:`MergeEvaluator`'s whitelist, unbound parameters, unregistered
    functions and unknown columns.  The fallback kernel re-raises the
    canonical row-mode error at evaluation time, so both modes fail
    identically.
    """


class _BatchFunctionContext:
    """The minimal execution-context surface merge-side batch kernels need.

    The engine's :class:`~repro.engine.vector.BatchExpressionCompiler`
    dispatches scalar calls through ``context.batch_call_function``; on the
    coordinator the registry holds plain Python callables (builtins plus
    registered Python UDFs), applied positionally with no memoization —
    exactly what :meth:`MergeEvaluator.evaluate` does per group.
    """

    def __init__(self, functions: dict[str, Any]) -> None:
        self._functions = functions

    def batch_call_function(self, name: str, columns: list, n: int) -> list:
        """Apply one scalar function over argument columns of length ``n``."""
        fn = self._functions[name.lower()]
        if not columns:
            return [fn() for _ in range(n)]
        return [fn(*values) for values in zip(*columns)]


class BatchMergeEvaluator:
    """Compiles residual expressions into batch kernels over merged groups.

    The vectorized counterpart of :class:`MergeEvaluator`: instead of binding
    a fresh evaluator per group and re-walking (and re-printing) the AST for
    every group, the coordinator compiles each SELECT-item / ``HAVING`` /
    ``ORDER BY`` expression *once per statement*.  Compilation rewrites the
    tree bottom-up — any subtree whose printed form matches a binding text
    becomes a synthetic column reference, alias references become alias
    columns, parameters are pre-bound to literals — and hands the result to
    the engine's :class:`~repro.engine.vector.BatchExpressionCompiler`, so
    the kernels (NULL semantics, comparison coercion, CASE short-circuiting)
    are the very ones the engine itself executes.

    A kernel's batch rows are ``binding values + alias values`` in the
    constructor's order; alias columns exist only on evaluators constructed
    with ``alias_names`` (the items-evaluator omits them, mirroring row
    mode where SELECT items cannot see their own aliases).
    """

    def __init__(
        self,
        binding_texts: Sequence[str],
        alias_names: Sequence[str] = (),
        functions: Optional[dict[str, Any]] = None,
        parameters: Optional[Sequence[Any]] = None,
    ) -> None:
        from ..engine.vector import BatchExpressionCompiler

        self.binding_texts = list(binding_texts)
        self.alias_names = [name.lower() for name in alias_names]
        self.functions = functions if functions is not None else {}
        self.parameters = tuple(parameters) if parameters is not None else None
        self._slots = {text: index for index, text in enumerate(self.binding_texts)}
        base = len(self.binding_texts)
        self._alias_slots = {
            name: base + offset for offset, name in enumerate(self.alias_names)
        }
        # synthetic scope: one unqualified column per binding, then per alias
        # ('#' keeps the names out of any parsable identifier space)
        self._names = [f"#m{index}" for index in range(base)] + [
            f"#a{offset}" for offset in range(len(self.alias_names))
        ]
        from ..engine.expressions import Scope

        scope = Scope([(None, name) for name in self._names])
        self._compiler = BatchExpressionCompiler(
            scope, _BatchFunctionContext(self.functions)
        )

    def compile(self, expr: ast.Expression):
        """Compile one residual expression into ``kernel(batch, ()) -> column``."""
        try:
            rewritten = self._rewrite(expr)
        except _UnsupportedResidual:
            return self._rowwise(expr)
        return self._compiler.compile(rewritten)

    # -- fallback ------------------------------------------------------------

    def _rowwise(self, expr: ast.Expression):
        """Per-group evaluation through :class:`MergeEvaluator`.

        Reached only for residuals the rewrite refused (see
        :class:`_UnsupportedResidual`); keeps error behaviour and messages
        identical to row mode.
        """
        texts = self.binding_texts
        width = len(texts)
        alias_names = self.alias_names
        functions = self.functions
        parameters = self.parameters

        def kernel(batch, outers) -> list:
            out = []
            for row in batch.rows:
                evaluator = MergeEvaluator(
                    dict(zip(texts, row)),
                    dict(zip(alias_names, row[width:])),
                    functions=functions,
                    parameters=parameters,
                )
                out.append(evaluator.evaluate(expr))
            return out

        return kernel

    # -- residual rewriting --------------------------------------------------

    def _rewrite(self, expr: ast.Expression) -> ast.Expression:
        """Rewrite a residual tree against the synthetic merge columns.

        Mirrors :meth:`MergeEvaluator.evaluate`'s resolution order: the
        binding texts win over everything (an aggregate-call subtree inside a
        larger expression resolves as a whole), then literals / pre-bound
        parameters / alias columns, then the structural node types of the
        row evaluator's whitelist.  Anything else is a row-mode fallback.
        """
        slot = self._slots.get(to_sql(expr))
        if slot is not None:
            return ast.Column(name=self._names[slot])
        if isinstance(expr, ast.Literal):
            return expr
        if isinstance(expr, ast.Parameter):
            if self.parameters is None or not 1 <= expr.index <= len(self.parameters):
                raise _UnsupportedResidual
            return ast.Literal(value=self.parameters[expr.index - 1])
        if isinstance(expr, ast.Column):
            if expr.table is None:
                alias_slot = self._alias_slots.get(expr.name.lower())
                if alias_slot is not None:
                    return ast.Column(name=self._names[alias_slot])
            raise _UnsupportedResidual
        if isinstance(expr, ast.BinaryOp):
            return dataclasses.replace(
                expr, left=self._rewrite(expr.left), right=self._rewrite(expr.right)
            )
        if isinstance(expr, ast.UnaryOp):
            return dataclasses.replace(expr, operand=self._rewrite(expr.operand))
        if isinstance(expr, ast.Case):
            whens = tuple(
                dataclasses.replace(
                    when,
                    condition=self._rewrite(when.condition),
                    result=self._rewrite(when.result),
                )
                for when in expr.whens
            )
            else_result = (
                None
                if expr.else_result is None
                else self._rewrite(expr.else_result)
            )
            return dataclasses.replace(expr, whens=whens, else_result=else_result)
        if isinstance(expr, ast.IsNull):
            return dataclasses.replace(expr, expr=self._rewrite(expr.expr))
        if isinstance(expr, ast.Between):
            return dataclasses.replace(
                expr,
                expr=self._rewrite(expr.expr),
                low=self._rewrite(expr.low),
                high=self._rewrite(expr.high),
            )
        if isinstance(expr, ast.InList):
            return dataclasses.replace(
                expr,
                expr=self._rewrite(expr.expr),
                items=tuple(self._rewrite(item) for item in expr.items),
            )
        if isinstance(expr, ast.FunctionCall):
            if expr.is_aggregate or self.functions.get(expr.name.lower()) is None:
                raise _UnsupportedResidual
            return dataclasses.replace(
                expr, args=tuple(self._rewrite(argument) for argument in expr.args)
            )
        raise _UnsupportedResidual


# ---------------------------------------------------------------------------
# Gathered-row ordering
# ---------------------------------------------------------------------------


def distinct_rows(rows: list, key: Optional[Any] = None) -> list:
    """First-occurrence-wins deduplication, matching the engine's DISTINCT.

    ``key`` extracts the identity to deduplicate on (default: the row
    itself) while the returned list keeps the full entries.
    """
    seen: set = set()
    unique = []
    for row in rows:
        identity = row if key is None else key(row)
        if identity in seen:
            continue
        seen.add(identity)
        unique.append(row)
    return unique


def sort_rows(
    rows: list[tuple], sort_columns: Sequence[tuple[int, bool]]
) -> list[tuple]:
    """Sort gathered rows exactly like the engine sorts projected rows.

    Stable per-key passes from the minor key to the major key over the
    mixed-type total order of :func:`repro.sql.types.sort_key`.
    """
    if not sort_columns:
        return rows
    ordered = list(rows)
    for position, descending in reversed(list(sort_columns)):
        ordered.sort(key=lambda row: sort_key(row[position]), reverse=descending)
    return ordered
