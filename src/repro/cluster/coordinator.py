"""The scatter-gather coordinator: execute a cluster plan and merge results.

Given a :mod:`plan <repro.cluster.planner>` the coordinator

* **scatters** the per-shard query to every shard in the plan (concurrently,
  one worker per shard — shards are independent databases),
* **gathers** the shard results in shard order (so repeated executions are
  deterministic), and
* **merges**: plain concatenation for row streams, group-wise
  partial-aggregate re-aggregation for aggregate queries, then re-applies
  ``HAVING``, ``ORDER BY``, ``DISTINCT`` and ``LIMIT`` exactly as the engine
  would have on a single backend.

Federated plans are *not* handled here — they need the owning
:class:`~repro.backends.sharded.ShardedConnection`'s scratch backend and are
executed there.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Optional, Sequence, Union

from ..engine.config import VectorConfig
from ..result import QueryResult
from ..sql import ast
from ..sql.printer import to_sql
from .merge import (
    BatchMergeEvaluator,
    MergeEvaluator,
    distinct_rows,
    merge_partial_rows,
    sort_rows,
)
from .planner import PartialAggregatePlan, RowStreamPlan, SingleShardPlan


class ShardCoordinator:
    """Executes single-shard and scatter-gather plans over shard connections.

    ``vector`` selects the merge-side evaluation mode: when enabled (the
    default, following ``REPRO_ENGINE_VECTORIZE``), post-merge residual
    expressions are compiled once per statement into batch kernels and
    evaluated over all merged groups at once; when disabled the per-group
    :class:`~repro.cluster.merge.MergeEvaluator` row oracle runs instead.
    """

    def __init__(
        self,
        shards: Sequence[Any],
        functions: Optional[dict[str, Any]] = None,
        vector: Optional[VectorConfig] = None,
    ) -> None:
        self._shards = list(shards)
        self._functions = functions if functions is not None else {}
        self._vector = vector if vector is not None else VectorConfig.from_env()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- plan execution ------------------------------------------------------

    def execute(
        self,
        plan: Union[SingleShardPlan, RowStreamPlan, PartialAggregatePlan],
        parameters: Optional[Sequence[Any]] = None,
    ) -> QueryResult:
        """Run one plan and return the merged :class:`QueryResult`."""
        if isinstance(plan, SingleShardPlan):
            return self._shards[plan.shard].query(plan.statement, parameters=parameters)
        if isinstance(plan, RowStreamPlan):
            return self._execute_row_stream(plan, parameters)
        return self._execute_partial_aggregate(plan, parameters)

    def close(self) -> None:
        """Shut the scatter worker pool down (the shards are closed elsewhere)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
                self._pool = None

    # -- scatter -------------------------------------------------------------

    def _scatter(
        self,
        statement: ast.Select,
        shard_ids: tuple[int, ...],
        parameters: Optional[Sequence[Any]],
    ) -> list[QueryResult]:
        """Execute one statement on several shards, results in shard order."""
        if len(shard_ids) == 1:
            return [self._shards[shard_ids[0]].query(statement, parameters=parameters)]
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._shards[shard].query, statement, parameters=parameters)
            for shard in shard_ids
        ]
        return [future.result() for future in futures]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self._shards)),
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    # -- gather: row streams -------------------------------------------------

    def _execute_row_stream(
        self, plan: RowStreamPlan, parameters: Optional[Sequence[Any]]
    ) -> QueryResult:
        split = plan.split
        results = self._scatter(split.shard_query, plan.shards, parameters)
        rows: list[tuple] = []
        for result in results:
            rows.extend(result.rows)
        if split.distinct:
            # per-shard DISTINCT leaves cross-shard duplicates; drop them the
            # way the engine does (first occurrence wins) before ordering
            rows = distinct_rows(rows)
        rows = sort_rows(rows, split.sort_columns)
        if split.limit is not None:
            rows = rows[: split.limit]
        if split.visible_width < len(split.shard_query.items):
            rows = [row[: split.visible_width] for row in rows]
        columns = [_output_name(item) for item in plan.statement.items]
        return QueryResult(columns=columns, rows=rows)

    # -- gather: partial aggregates ------------------------------------------

    def _execute_partial_aggregate(
        self, plan: PartialAggregatePlan, parameters: Optional[Sequence[Any]]
    ) -> QueryResult:
        split = plan.split
        statement = plan.statement
        results = self._scatter(split.shard_query, plan.shards, parameters)
        gathered: list[tuple] = []
        for result in results:
            gathered.extend(result.rows)
        groups = merge_partial_rows(gathered, len(split.key_texts), split.partials)

        aliases_by_position = [
            item.alias.lower() if item.alias is not None else None
            for item in statement.items
        ]
        order_specs = [(order.expr, order.descending) for order in statement.order_by]
        if self._vector.enabled and groups:
            merged_rows = self._merge_groups_batch(
                split, statement, groups, aliases_by_position, order_specs, parameters
            )
        else:
            merged_rows = self._merge_groups_rowwise(
                split, statement, groups, aliases_by_position, order_specs, parameters
            )

        if statement.distinct:
            merged_rows = distinct_rows(merged_rows, key=lambda entry: entry[0])
        if order_specs:
            sort_columns = [
                (position, descending)
                for position, (_, descending) in enumerate(order_specs)
            ]
            ordered = sort_rows(
                [values + keys for values, keys in merged_rows],
                [(len(statement.items) + position, desc) for position, desc in sort_columns],
            )
            rows = [row[: len(statement.items)] for row in ordered]
        else:
            rows = [values for values, _ in merged_rows]
        if statement.limit is not None:
            rows = rows[: statement.limit]
        columns = [_output_name(item) for item in statement.items]
        return QueryResult(columns=columns, rows=rows)

    def _merge_groups_rowwise(
        self,
        split: Any,
        statement: ast.Select,
        groups: dict[tuple, list],
        aliases_by_position: list[Optional[str]],
        order_specs: list[tuple[ast.Expression, bool]],
        parameters: Optional[Sequence[Any]],
    ) -> list[tuple[tuple, tuple]]:
        """Per-group residual evaluation (the ``REPRO_ENGINE_VECTORIZE=0``
        oracle): one fresh :class:`MergeEvaluator` pair per merged group."""
        merged_rows: list[tuple[tuple, tuple]] = []  # (visible row, sort keys)
        for key, states in groups.items():
            bindings: dict[str, Any] = dict(zip(split.key_texts, key))
            for state in states:
                bindings[state.spec.text] = state.result()
            evaluator = MergeEvaluator(
                bindings, functions=self._functions, parameters=parameters
            )
            values = tuple(evaluator.evaluate(item.expr) for item in statement.items)
            aliases = {
                alias: value
                for alias, value in zip(aliases_by_position, values)
                if alias is not None
            }
            final = MergeEvaluator(
                bindings, aliases, functions=self._functions, parameters=parameters
            )
            if statement.having is not None and final.evaluate(statement.having) is not True:
                continue
            sort_values = tuple(final.evaluate(expr) for expr, _ in order_specs)
            merged_rows.append((values, sort_values))
        return merged_rows

    def _merge_groups_batch(
        self,
        split: Any,
        statement: ast.Select,
        groups: dict[tuple, list],
        aliases_by_position: list[Optional[str]],
        order_specs: list[tuple[ast.Expression, bool]],
        parameters: Optional[Sequence[Any]],
    ) -> list[tuple[tuple, tuple]]:
        """Vectorized residual evaluation over all merged groups at once.

        Each residual expression compiles once per statement; the merged
        groups form a single batch whose rows are ``group key + merged
        aggregate values`` (plus the computed alias columns for ``HAVING``
        and ``ORDER BY``).  The stage order mirrors row mode exactly:
        SELECT items first (without alias visibility), then the ``HAVING``
        filter, and only then the sort keys — so groups the filter drops
        never see the ORDER BY expressions, in either mode.
        """
        from ..engine.vector import RowBatch

        binding_texts = list(split.key_texts) + [spec.text for spec in split.partials]
        group_rows = [
            key + tuple(state.result() for state in states)
            for key, states in groups.items()
        ]
        item_evaluator = BatchMergeEvaluator(
            binding_texts, functions=self._functions, parameters=parameters
        )
        item_kernels = [item_evaluator.compile(item.expr) for item in statement.items]
        batch = RowBatch(group_rows)
        value_columns = [kernel(batch, ()) for kernel in item_kernels]
        values_rows = list(zip(*value_columns))

        alias_positions = [
            position
            for position, alias in enumerate(aliases_by_position)
            if alias is not None
        ]
        alias_names = [aliases_by_position[position] for position in alias_positions]
        final_evaluator = BatchMergeEvaluator(
            binding_texts,
            alias_names,
            functions=self._functions,
            parameters=parameters,
        )
        extended_rows = [
            row + tuple(values[position] for position in alias_positions)
            for row, values in zip(group_rows, values_rows)
        ]
        if statement.having is not None:
            having_kernel = final_evaluator.compile(statement.having)
            mask = having_kernel(RowBatch(extended_rows), ())
            kept = [index for index, flag in enumerate(mask) if flag is True]
            if len(kept) != len(extended_rows):
                extended_rows = [extended_rows[index] for index in kept]
                values_rows = [values_rows[index] for index in kept]
        if order_specs and extended_rows:
            order_kernels = [
                final_evaluator.compile(expr) for expr, _ in order_specs
            ]
            final_batch = RowBatch(extended_rows)
            sort_columns = [kernel(final_batch, ()) for kernel in order_kernels]
            sort_rows_keys = list(zip(*sort_columns))
        else:
            sort_rows_keys = [()] * len(extended_rows)
        return list(zip(values_rows, sort_rows_keys))


def _output_name(item: ast.SelectItem) -> str:
    """Result-column naming, matching the engine's convention."""
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.Column):
        return item.expr.name
    return to_sql(item.expr)
