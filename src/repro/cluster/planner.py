"""The distributed query planner: choose how a statement runs on a cluster.

The input is a *rewritten* statement — plain SQL, exactly what the MTBase
middleware would send to a single backend.  Because tenant-specific tables
are partitioned by ttid (and global tables replicated), most rewritten
queries decompose into per-shard work plus a cheap coordinator merge.  The
planner picks the cheapest sound strategy:

1. :class:`SingleShardPlan` — the query references no partitioned table, or
   ``D'`` lands on a single shard (the fast path): execute there unchanged.
2. :class:`RowStreamPlan` — a non-aggregate query whose row stream provably
   partitions across shards: plain UNION of the shard streams, with
   ``ORDER BY``/``LIMIT``/``DISTINCT`` re-applied by the coordinator.
3. :class:`PartialAggregatePlan` — an aggregate query over a partitioned row
   stream: shards compute partial aggregates per group (``SUM``/``COUNT``/
   ``MIN``/``MAX``, ``AVG`` as ``SUM``÷``COUNT``), the coordinator
   re-aggregates and re-applies ``HAVING``/``ORDER BY``/``LIMIT``.
4. :class:`FederatedPlan` — everything else: the coordinator pulls the
   referenced base rows into a scratch backend and executes the original
   query there.  Slow but always correct; it is the safety net that makes
   the planner's static analysis allowed to be conservative.

**Soundness** of strategies 2 and 3 is proven by the shardability analysis in
:mod:`repro.compile.analysis` (see its module docstring for the rules).  The
analysis runs *once per statement*: when the statement arrives from the
middleware it carries a precomputed
:class:`~repro.compile.analysis.QueryAnalysis` inside its
:class:`~repro.compile.artifact.CompiledQuery`, and the planner consumes that
artifact instead of re-walking the AST (``stats.analyses_reused`` vs.
``stats.analyses_recomputed`` counts both paths).  Bare statements — direct
``backend.execute()`` calls that never went through the compiler — fall back
to the planner's own :class:`~repro.compile.analysis.ShardabilityAnalyzer`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Union

# Re-exported for backward compatibility: the partitioning catalog moved to
# repro.compile.analysis so the compiler and the planner share one analysis.
from ..compile.analysis import (  # noqa: F401  (ClusterCatalog/PartitionInfo re-export)
    ClusterCatalog,
    PartitionInfo,
    QueryAnalysis,
    ShardabilityAnalyzer,
)
from ..compile.cost import (
    CostConfig,
    TablePrefilter,
    derive_pull_columns,
    derive_table_prefilters,
)
from ..errors import SplitError
from ..sql import ast
from ..sql.printer import to_sql
from ..sql.transform import (
    AggregateSplit,
    RowStreamSplit,
    split_partial_aggregates,
    split_row_stream,
)

# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SingleShardPlan:
    """Run the statement unchanged on one shard and relay its result."""

    shard: int
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return f"single-shard(shard={self.shard})"


@dataclass(frozen=True)
class RowStreamPlan:
    """Scatter the per-shard stream, gather by UNION + re-sort at the top."""

    shards: tuple[int, ...]
    split: RowStreamSplit
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return f"row-stream(shards={list(self.shards)})"


@dataclass(frozen=True)
class PartialAggregatePlan:
    """Scatter partial aggregates, re-aggregate groups at the coordinator."""

    shards: tuple[int, ...]
    split: AggregateSplit
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return (
            f"partial-aggregate(shards={list(self.shards)}, "
            f"partials={len(self.split.partials)})"
        )


@dataclass(frozen=True)
class FederatedPlan:
    """Pull the referenced base rows into a scratch backend and run there.

    ``tables`` lists the base tables to synchronize; ``None`` means the
    statement references a view or unknown relation, so every known table
    must be pulled.

    The costed planner decorates the pull with two reductions (both empty in
    uncosted mode, restoring the historic pull-everything behavior):

    * ``prefilters`` — per-table predicates proven sound for *every*
      occurrence of the table in the statement
      (:func:`repro.compile.cost.derive_table_prefilters`), evaluated by the
      shards at pull time so fewer rows ship;
    * ``pull_columns`` — per-table column subsets covering every column the
      statement (and the registered SQL UDF bodies) can reference, so
      narrower rows ship.
    """

    statement: ast.Select
    tables: Optional[tuple[str, ...]]
    prefilters: tuple[TablePrefilter, ...] = ()
    pull_columns: tuple[tuple[str, tuple[str, ...]], ...] = ()

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        pulled = "all" if self.tables is None else list(self.tables)
        parts = [f"tables={pulled}"]
        if self.prefilters:
            summary = ", ".join(prefilter.describe() for prefilter in self.prefilters)
            parts.append(f"prefilter=[{summary}]")
        if self.pull_columns:
            narrowed = ", ".join(
                f"{table}:{len(columns)}" for table, columns in self.pull_columns
            )
            parts.append(f"columns=[{narrowed}]")
        return f"federated({', '.join(parts)})"


Plan = Union[SingleShardPlan, RowStreamPlan, PartialAggregatePlan, FederatedPlan]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


@dataclass
class PlannerStats:
    """Planner counters, read by the compile-once acceptance tests."""

    #: total plan() calls
    plans: int = 0
    #: statements planned from a precomputed CompiledQuery analysis
    analyses_reused: int = 0
    #: bare statements whose analysis the planner had to run itself
    analyses_recomputed: int = 0

    def reset(self) -> None:
        """Zero the counters."""
        self.plans = 0
        self.analyses_reused = 0
        self.analyses_recomputed = 0


_EVAL_BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
)


class ClusterPlanner:
    """Plans rewritten SELECT statements against a partitioning catalog."""

    def __init__(
        self,
        catalog: ClusterCatalog,
        scatter_gather: bool = True,
        functions: Optional[dict] = None,
        cost: Optional[CostConfig] = None,
        columns_of: Optional[dict] = None,
        statistics_provider=None,
        udf_statements_provider=None,
    ) -> None:
        self.catalog = catalog
        #: the shared shardability analysis, run only for bare statements
        self.analyzer = ShardabilityAnalyzer(catalog)
        #: when False, every multi-shard query uses the federated strategy
        #: (escape hatch for workloads that break the co-location assumption)
        self.scatter_gather = scatter_gather
        #: scalar functions the coordinator can evaluate post-merge (shared,
        #: mutable: the owning connection adds Python UDFs as they register)
        self.functions = functions if functions is not None else {}
        #: cost-model configuration gating the federated pushdown derivation
        self.cost = cost if cost is not None else CostConfig.from_env()
        #: table → ordered column names (shared, mutable: the owning
        #: connection records every CREATE TABLE); empty disables pushdown
        self.columns_of = columns_of if columns_of is not None else {}
        #: zero-argument callable returning the cluster's merged
        #: StatisticsCatalog (or None), consulted per federated plan
        self.statistics_provider = statistics_provider
        #: zero-argument callable returning the parsed SELECT bodies of the
        #: registered SQL UDFs — their column references must survive
        #: projection pushdown because pull-time prefilters may call them
        self.udf_statements_provider = udf_statements_provider
        #: analysis reuse counters (gateway sessions plan concurrently)
        self.stats = PlannerStats()
        self._stats_lock = threading.Lock()

    def reset_stats(self) -> None:
        """Zero the planner counters, under the same lock the increments take."""
        with self._stats_lock:
            self.stats.reset()

    # -- entry point ---------------------------------------------------------

    def plan(
        self,
        select: ast.Select,
        shards: tuple[int, ...],
        analysis: Optional[QueryAnalysis] = None,
        column_owners: Optional[dict[int, str]] = None,
    ) -> Plan:
        """Choose the execution strategy for one SELECT over ``shards``.

        ``analysis`` is the statement's precomputed shardability analysis
        (``CompiledQuery.analysis``); when given, the planner performs no AST
        walk of its own.  Exception: the compiler's catalog may not know
        tables created behind the middleware's back (backend-level meta
        tables) — if any name it reported unknown is a relation of *this*
        cluster, the precomputed verdicts (``partition_safe`` above all) are
        stale-conservative, so the planner re-analyses against its own
        catalog rather than silently downgrade scatter-gather to federated.

        ``column_owners`` is the static analyzer's column-provenance map for
        ``select`` (``CompiledQuery.facts.column_owners``): when the planner
        does have to re-analyse, the walk resolves unqualified columns
        through it instead of the any-binding heuristic.
        """
        if analysis is not None and set(analysis.unknown) & self.catalog.relations:
            analysis = None  # compiled against a catalog missing our tables
        reused = analysis is not None
        if analysis is None:
            if column_owners:
                analysis = ShardabilityAnalyzer(
                    self.catalog, column_owners=column_owners
                ).analyze(select)
            else:
                analysis = self.analyzer.analyze(select)
        with self._stats_lock:
            self.stats.plans += 1
            if reused:
                self.stats.analyses_reused += 1
            else:
                self.stats.analyses_recomputed += 1

        partitioned = set(analysis.partitioned)
        unknown = set(analysis.unknown)
        known = set(analysis.known)

        if not partitioned and not (unknown & self.catalog.views):
            # global tables are replicated: any single shard answers; unknown
            # non-view relations will raise the backend's own catalog error
            return SingleShardPlan(shard=shards[0], statement=select)
        if len(shards) == 1:
            return SingleShardPlan(shard=shards[0], statement=select)
        if unknown:
            # a view (or a relation this connection never saw DDL for) hides
            # its base tables: pull everything and execute federated
            return FederatedPlan(statement=select, tables=None)
        if not self.scatter_gather:
            return self._federated(select, known)

        if not analysis.partition_safe:
            return self._federated(select, known)
        if analysis.has_aggregation:
            plan = self._plan_partial_aggregate(select, shards)
        else:
            plan = self._plan_row_stream(select, shards)
        return plan if plan is not None else self._federated(select, known)

    def _federated(self, select: ast.Select, tables: set[str]) -> FederatedPlan:
        prefilters: tuple[TablePrefilter, ...] = ()
        pull_columns: tuple[tuple[str, tuple[str, ...]], ...] = ()
        if self.cost.enabled and self.columns_of:
            statistics = (
                self.statistics_provider() if self.statistics_provider else None
            )
            prefilters = derive_table_prefilters(
                select,
                self.catalog,
                self.columns_of,
                statistics=statistics,
                config=self.cost,
            )
            statements = [select]
            if self.udf_statements_provider is not None:
                statements.extend(self.udf_statements_provider())
            always_keep = {
                table: (info.ttid_column,)
                for table, info in self.catalog.partitioned.items()
            }
            pulls = derive_pull_columns(
                statements, self.columns_of, always_keep=always_keep
            )
            if pulls:
                pull_columns = tuple(sorted(pulls.items()))
        return FederatedPlan(
            statement=select,
            tables=tuple(sorted(tables)),
            prefilters=prefilters,
            pull_columns=pull_columns,
        )

    # -- scatter-gather strategies -------------------------------------------

    def _plan_row_stream(
        self, select: ast.Select, shards: tuple[int, ...]
    ) -> Optional[RowStreamPlan]:
        try:
            split = split_row_stream(select)
        except SplitError:
            return None
        return RowStreamPlan(shards=shards, split=split, statement=select)

    def _plan_partial_aggregate(
        self, select: ast.Select, shards: tuple[int, ...]
    ) -> Optional[PartialAggregatePlan]:
        try:
            split = split_partial_aggregates(select)
        except SplitError:
            return None
        texts = set(split.key_texts) | {partial.text for partial in split.partials}
        aliases = {
            item.alias.lower() for item in select.items if item.alias is not None
        }
        for item in select.items:
            if not self._evaluable(item.expr, texts, frozenset()):
                return None
        if not self._evaluable(select.having, texts, aliases):
            return None
        for order in select.order_by:
            if not self._evaluable(order.expr, texts, aliases):
                return None
        return PartialAggregatePlan(shards=shards, split=split, statement=select)

    def _evaluable(
        self,
        expr: Optional[ast.Expression],
        texts: set[str],
        aliases: frozenset[str],
    ) -> bool:
        """Whether the coordinator can evaluate ``expr`` over merged bindings."""
        if expr is None:
            return True
        if to_sql(expr) in texts:
            return True
        if isinstance(expr, ast.Column):
            return expr.table is None and expr.name.lower() in aliases
        if isinstance(expr, ast.Literal):
            return True
        if isinstance(expr, ast.BinaryOp):
            return (
                expr.op.upper() in _EVAL_BINARY_OPS
                and self._evaluable(expr.left, texts, aliases)
                and self._evaluable(expr.right, texts, aliases)
            )
        if isinstance(expr, ast.UnaryOp):
            return self._evaluable(expr.operand, texts, aliases)
        if isinstance(expr, ast.Case):
            return all(
                self._evaluable(when.condition, texts, aliases)
                and self._evaluable(when.result, texts, aliases)
                for when in expr.whens
            ) and self._evaluable(expr.else_result, texts, aliases)
        if isinstance(expr, ast.IsNull):
            return self._evaluable(expr.expr, texts, aliases)
        if isinstance(expr, ast.Between):
            return (
                self._evaluable(expr.expr, texts, aliases)
                and self._evaluable(expr.low, texts, aliases)
                and self._evaluable(expr.high, texts, aliases)
            )
        if isinstance(expr, ast.InList):
            return self._evaluable(expr.expr, texts, aliases) and all(
                self._evaluable(item, texts, aliases) for item in expr.items
            )
        if isinstance(expr, ast.FunctionCall):
            # non-aggregate scalar call (aggregates were bound by text above):
            # evaluable when the coordinator holds the function
            return expr.name.lower() in self.functions and all(
                self._evaluable(argument, texts, aliases) for argument in expr.args
            )
        return False
