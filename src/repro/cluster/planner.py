"""The distributed query planner: choose how a statement runs on a cluster.

The input is a *rewritten* statement — plain SQL, exactly what the MTBase
middleware would send to a single backend.  Because tenant-specific tables
are partitioned by ttid (and global tables replicated), most rewritten
queries decompose into per-shard work plus a cheap coordinator merge.  The
planner picks the cheapest sound strategy:

1. :class:`SingleShardPlan` — the query references no partitioned table, or
   ``D'`` lands on a single shard (the fast path): execute there unchanged.
2. :class:`RowStreamPlan` — a non-aggregate query whose row stream provably
   partitions across shards: plain UNION of the shard streams, with
   ``ORDER BY``/``LIMIT``/``DISTINCT`` re-applied by the coordinator.
3. :class:`PartialAggregatePlan` — an aggregate query over a partitioned row
   stream: shards compute partial aggregates per group (``SUM``/``COUNT``/
   ``MIN``/``MAX``, ``AVG`` as ``SUM``÷``COUNT``), the coordinator
   re-aggregates and re-applies ``HAVING``/``ORDER BY``/``LIMIT``.
4. :class:`FederatedPlan` — everything else: the coordinator pulls the
   referenced base rows into a scratch backend and executes the original
   query there.  Slow but always correct; it is the safety net that makes
   the planner's static analysis allowed to be conservative.

**Soundness.**  Strategies 2 and 3 require that every pre-aggregation row is
produced by exactly one shard.  The planner proves this from the partitioning
catalog: a FROM clause is *anchored* when it joins at least one partitioned
table (or a shard-local derived table) and global tables; sub-queries must be
*shard-local* — either global-only, or grouped/DISTINCT on a tenant-specific
key column, whose groups therefore never span shards.  Joins between two
partitioned tables are assumed co-located (MTBase extends global referential
integrity with the ttid, Appendix A.1, and MT-H assigns orders/lineitems to
their customer's tenant); queries that join partitioned rows of *different*
tenants on non-key attributes must disable scatter-gather (see
:class:`repro.backends.sharded.ShardedBackend`'s ``scatter_gather`` flag).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..errors import SplitError
from ..sql import ast
from ..sql.printer import to_sql
from ..sql.transform import (
    AggregateSplit,
    RowStreamSplit,
    iter_select_expressions,
    select_aggregate_calls,
    split_partial_aggregates,
    split_row_stream,
    walk_expression,
)

# ---------------------------------------------------------------------------
# Partitioning catalog
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PartitionInfo:
    """How one table is partitioned across the cluster.

    ``local_keys`` are the lower-cased columns whose values never span
    tenants — the ttid column itself plus the table's tenant-specific (MTSQL
    ``SPECIFIC``) attributes.  Grouping by any of them keeps every group on a
    single shard, which is what makes nested aggregation decomposable.
    """

    table: str
    ttid_column: str
    local_keys: frozenset[str] = frozenset()

    @property
    def key(self) -> str:
        """Lower-cased catalog key."""
        return self.table.lower()

    def all_local_keys(self) -> frozenset[str]:
        """The local keys including the ttid column itself."""
        return self.local_keys | {self.ttid_column.lower()}


@dataclass
class ClusterCatalog:
    """What the planner knows about the cluster's relations."""

    #: partitioned tables by lower-cased name
    partitioned: dict[str, PartitionInfo] = field(default_factory=dict)
    #: every base table created on the cluster (lower-cased)
    relations: set[str] = field(default_factory=set)
    #: every view created on the cluster (lower-cased)
    views: set[str] = field(default_factory=set)

    def is_partitioned(self, name: str) -> bool:
        """Whether ``name`` is a tenant-partitioned base table."""
        return name.lower() in self.partitioned

    def is_replicated_table(self, name: str) -> bool:
        """Whether ``name`` is a known base table replicated on every shard."""
        lowered = name.lower()
        return lowered in self.relations and lowered not in self.partitioned


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SingleShardPlan:
    """Run the statement unchanged on one shard and relay its result."""

    shard: int
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return f"single-shard(shard={self.shard})"


@dataclass(frozen=True)
class RowStreamPlan:
    """Scatter the per-shard stream, gather by UNION + re-sort at the top."""

    shards: tuple[int, ...]
    split: RowStreamSplit
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return f"row-stream(shards={list(self.shards)})"


@dataclass(frozen=True)
class PartialAggregatePlan:
    """Scatter partial aggregates, re-aggregate groups at the coordinator."""

    shards: tuple[int, ...]
    split: AggregateSplit
    statement: ast.Select

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        return (
            f"partial-aggregate(shards={list(self.shards)}, "
            f"partials={len(self.split.partials)})"
        )


@dataclass(frozen=True)
class FederatedPlan:
    """Pull the referenced base rows into a scratch backend and run there.

    ``tables`` lists the base tables to synchronize; ``None`` means the
    statement references a view or unknown relation, so every known table
    must be pulled.
    """

    statement: ast.Select
    tables: Optional[tuple[str, ...]]

    def describe(self) -> str:
        """One-line plan summary for logs and examples."""
        pulled = "all" if self.tables is None else list(self.tables)
        return f"federated(tables={pulled})"


Plan = Union[SingleShardPlan, RowStreamPlan, PartialAggregatePlan, FederatedPlan]


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


@dataclass
class _StreamInfo:
    """Result of analysing one SELECT's FROM/WHERE row stream."""

    ok: bool
    anchored: bool
    bindings: dict[str, frozenset[str]] = field(default_factory=dict)


_EVAL_BINARY_OPS = frozenset(
    {"+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}
)


class ClusterPlanner:
    """Plans rewritten SELECT statements against a partitioning catalog."""

    def __init__(
        self,
        catalog: ClusterCatalog,
        scatter_gather: bool = True,
        functions: Optional[dict] = None,
    ) -> None:
        self.catalog = catalog
        #: when False, every multi-shard query uses the federated strategy
        #: (escape hatch for workloads that break the co-location assumption)
        self.scatter_gather = scatter_gather
        #: scalar functions the coordinator can evaluate post-merge (shared,
        #: mutable: the owning connection adds Python UDFs as they register)
        self.functions = functions if functions is not None else {}

    # -- entry point ---------------------------------------------------------

    def plan(self, select: ast.Select, shards: tuple[int, ...]) -> Plan:
        """Choose the execution strategy for one SELECT over ``shards``."""
        from ..sql.transform import referenced_table_names

        tables = referenced_table_names(select)
        known = {name for name in tables if name in self.catalog.relations}
        unknown = tables - known
        partitioned = {name for name in tables if name in self.catalog.partitioned}
        if not partitioned and not (unknown & self.catalog.views):
            # global tables are replicated: any single shard answers; unknown
            # non-view relations will raise the backend's own catalog error
            return SingleShardPlan(shard=shards[0], statement=select)
        if len(shards) == 1:
            return SingleShardPlan(shard=shards[0], statement=select)
        if unknown:
            # a view (or a relation this connection never saw DDL for) hides
            # its base tables: pull everything and execute federated
            return FederatedPlan(statement=select, tables=None)
        if not self.scatter_gather:
            return self._federated(select, known)

        info = self._stream_info(select)
        if not info.ok or not info.anchored:
            return self._federated(select, known)
        if select.group_by or select_aggregate_calls(select):
            plan = self._plan_partial_aggregate(select, shards)
        else:
            plan = self._plan_row_stream(select, shards)
        return plan if plan is not None else self._federated(select, known)

    def _federated(self, select: ast.Select, tables: set[str]) -> FederatedPlan:
        return FederatedPlan(statement=select, tables=tuple(sorted(tables)))

    # -- scatter-gather strategies -------------------------------------------

    def _plan_row_stream(
        self, select: ast.Select, shards: tuple[int, ...]
    ) -> Optional[RowStreamPlan]:
        try:
            split = split_row_stream(select)
        except SplitError:
            return None
        return RowStreamPlan(shards=shards, split=split, statement=select)

    def _plan_partial_aggregate(
        self, select: ast.Select, shards: tuple[int, ...]
    ) -> Optional[PartialAggregatePlan]:
        try:
            split = split_partial_aggregates(select)
        except SplitError:
            return None
        texts = set(split.key_texts) | {partial.text for partial in split.partials}
        aliases = {
            item.alias.lower() for item in select.items if item.alias is not None
        }
        for item in select.items:
            if not self._evaluable(item.expr, texts, frozenset()):
                return None
        if not self._evaluable(select.having, texts, aliases):
            return None
        for order in select.order_by:
            if not self._evaluable(order.expr, texts, aliases):
                return None
        return PartialAggregatePlan(shards=shards, split=split, statement=select)

    def _evaluable(
        self,
        expr: Optional[ast.Expression],
        texts: set[str],
        aliases: frozenset[str],
    ) -> bool:
        """Whether the coordinator can evaluate ``expr`` over merged bindings."""
        if expr is None:
            return True
        if to_sql(expr) in texts:
            return True
        if isinstance(expr, ast.Column):
            return expr.table is None and expr.name.lower() in aliases
        if isinstance(expr, ast.Literal):
            return True
        if isinstance(expr, ast.BinaryOp):
            return (
                expr.op.upper() in _EVAL_BINARY_OPS
                and self._evaluable(expr.left, texts, aliases)
                and self._evaluable(expr.right, texts, aliases)
            )
        if isinstance(expr, ast.UnaryOp):
            return self._evaluable(expr.operand, texts, aliases)
        if isinstance(expr, ast.Case):
            return all(
                self._evaluable(when.condition, texts, aliases)
                and self._evaluable(when.result, texts, aliases)
                for when in expr.whens
            ) and self._evaluable(expr.else_result, texts, aliases)
        if isinstance(expr, ast.IsNull):
            return self._evaluable(expr.expr, texts, aliases)
        if isinstance(expr, ast.Between):
            return (
                self._evaluable(expr.expr, texts, aliases)
                and self._evaluable(expr.low, texts, aliases)
                and self._evaluable(expr.high, texts, aliases)
            )
        if isinstance(expr, ast.InList):
            return self._evaluable(expr.expr, texts, aliases) and all(
                self._evaluable(item, texts, aliases) for item in expr.items
            )
        if isinstance(expr, ast.FunctionCall):
            # non-aggregate scalar call (aggregates were bound by text above):
            # evaluable when the coordinator holds the function
            return expr.name.lower() in self.functions and all(
                self._evaluable(argument, texts, aliases) for argument in expr.args
            )
        return False

    # -- row-partitioning analysis -------------------------------------------

    def _stream_info(self, select: ast.Select) -> _StreamInfo:
        """Analyse whether a SELECT's pre-aggregation rows partition by shard."""
        bindings: dict[str, frozenset[str]] = {}
        anchored = False
        for item in select.from_items:
            item_ok, item_anchored = self._from_item_info(item, bindings)
            if not item_ok:
                return _StreamInfo(ok=False, anchored=False)
            anchored = anchored or item_anchored
        for expr in iter_select_expressions(select):
            if not self._expression_subqueries_ok(expr, bindings):
                return _StreamInfo(ok=False, anchored=False)
        return _StreamInfo(ok=True, anchored=anchored, bindings=bindings)

    def _from_item_info(
        self, item: ast.FromItem, bindings: dict[str, frozenset[str]]
    ) -> tuple[bool, bool]:
        """Register a FROM item's bindings; returns ``(ok, anchored)``."""
        if isinstance(item, ast.TableRef):
            lowered = item.name.lower()
            binding = (item.alias or item.name).lower()
            if lowered in self.catalog.partitioned:
                bindings[binding] = self.catalog.partitioned[lowered].all_local_keys()
                return True, True
            if self.catalog.is_replicated_table(lowered):
                bindings[binding] = frozenset()
                return True, False
            return False, False  # view / unknown relation
        if isinstance(item, ast.SubqueryRef):
            shape, local_out = self._select_shape(item.query)
            if shape == "opaque":
                return False, False
            bindings[item.alias.lower()] = local_out
            return True, shape in ("stream", "grouped")
        if isinstance(item, ast.Join):
            left_ok, left_anchored = self._from_item_info(item.left, bindings)
            right_ok, right_anchored = self._from_item_info(item.right, bindings)
            if not (left_ok and right_ok):
                return False, False
            if item.join_type is ast.JoinType.LEFT and right_anchored and not left_anchored:
                # a replicated left side would be NULL-extended on every
                # shard, duplicating its rows across the union
                return False, False
            return True, left_anchored or right_anchored
        return False, False

    def _select_shape(self, select: ast.Select) -> tuple[str, frozenset[str]]:
        """Classify a sub-query: ``global`` (replicated result), ``stream`` /
        ``grouped`` (result rows partition by shard) or ``opaque``."""
        from ..sql.transform import referenced_table_names

        tables = referenced_table_names(select)
        if any(name not in self.catalog.relations for name in tables):
            return "opaque", frozenset()
        if not any(name in self.catalog.partitioned for name in tables):
            return "global", frozenset()

        info = self._stream_info(select)
        if not info.ok or not info.anchored:
            return "opaque", frozenset()
        if select.limit is not None:
            # a per-shard LIMIT is not the global LIMIT
            return "opaque", frozenset()

        aggregates = select_aggregate_calls(select)
        if select.group_by:
            if not any(
                self._is_local_key(expr, info.bindings) for expr in select.group_by
            ):
                return "opaque", frozenset()
            shape = "grouped"
        elif aggregates:
            return "opaque", frozenset()  # a global aggregate needs all shards
        elif select.distinct:
            if not any(
                self._is_local_key(item.expr, info.bindings) for item in select.items
            ):
                return "opaque", frozenset()
            shape = "grouped"
        else:
            shape = "stream"
        return shape, self._local_output_keys(select, info.bindings)

    def _local_output_keys(
        self, select: ast.Select, bindings: dict[str, frozenset[str]]
    ) -> frozenset[str]:
        """Output columns of a sub-query that pass a local key through."""
        keys = set()
        for item in select.items:
            if self._is_local_key(item.expr, bindings):
                name = item.alias or item.expr.name  # type: ignore[union-attr]
                keys.add(name.lower())
        return frozenset(keys)

    def _is_local_key(
        self, expr: ast.Expression, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """Whether an expression is a column whose values never span shards."""
        if not isinstance(expr, ast.Column):
            return False
        name = expr.name.lower()
        if expr.table is not None:
            return name in bindings.get(expr.table.lower(), frozenset())
        return any(name in keys for keys in bindings.values())

    def _expression_subqueries_ok(
        self, expr: ast.Expression, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """Check the sub-queries nested inside one expression tree."""
        for node in walk_expression(expr):
            if isinstance(node, (ast.ScalarSubquery, ast.Exists)):
                # must yield the same value/verdict on every shard
                if self._select_shape(node.query)[0] != "global":
                    return False
            elif isinstance(node, ast.InSubquery):
                if not self._in_subquery_ok(node, bindings):
                    return False
        return True

    def _in_subquery_ok(
        self, node: ast.InSubquery, bindings: dict[str, frozenset[str]]
    ) -> bool:
        """A membership test decomposes when probe and members are co-located.

        Either the sub-query is global (identical member set everywhere), or
        both sides are tenant-local keys: the probed rows and the member rows
        then live on the same shard, so the per-shard verdict is the global
        verdict.
        """
        shape, local_out = self._select_shape(node.query)
        if shape == "global":
            return True
        if shape == "opaque":
            return False
        if len(node.query.items) != 1:
            return False
        item = node.query.items[0]
        member = (item.alias or getattr(item.expr, "name", "")).lower()
        if member not in local_out:
            return False
        return self._is_local_key(node.expr, bindings)
