"""Tenant placement policies: which shard owns which tenant.

A sharded cluster (:class:`repro.backends.sharded.ShardedBackend`) partitions
the rows of tenant-specific tables by their ttid; a *placement policy* is the
pure function behind that partitioning.  Placement is consulted

* at load time, to route each owned row to its shard,
* at query time, to prune the shard fan-out to the shards owning ``D'`` (the
  single-shard fast path falls out when ``D'`` lands on one shard).

Two policies ship with the reproduction: :class:`HashPlacement` (multiplicative
hashing, the default) and :class:`ExplicitPlacement` (an operator-provided
tenant → shard map, e.g. to co-locate an alliance of tenants).
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping, Optional

from ..errors import ClusterError

#: Knuth's multiplicative-hash constant (2^32 / golden ratio, odd)
_HASH_MULTIPLIER = 2654435761
_HASH_MODULUS = 2**32


class PlacementPolicy(abc.ABC):
    """Deterministic assignment of tenants to the shards of a cluster."""

    #: number of shards this policy places tenants on
    shard_count: int

    @abc.abstractmethod
    def shard_of(self, ttid: int) -> int:
        """The shard (``0 .. shard_count-1``) owning tenant ``ttid``'s rows."""

    def shards_for(self, dataset: Optional[Iterable[int]]) -> tuple[int, ...]:
        """The sorted shard set owning the tenants of a data set ``D'``.

        ``None`` means "unknown data set": every shard must be consulted.  An
        empty data set maps to shard 0 (any single shard returns the empty
        result).
        """
        if dataset is None:
            return tuple(range(self.shard_count))
        shards = sorted({self.shard_of(ttid) for ttid in dataset})
        return tuple(shards) if shards else (0,)

    def _check_shard_count(self, shard_count: int) -> int:
        if shard_count < 1:
            raise ClusterError(f"a cluster needs at least one shard, got {shard_count}")
        return shard_count

    def __repr__(self) -> str:
        return f"{type(self).__name__}(shard_count={self.shard_count})"


class HashPlacement(PlacementPolicy):
    """Spread tenants over the shards by multiplicative hashing.

    The hash is deterministic across processes (no reliance on ``PYTHONHASHSEED``)
    and consecutive ttids land on distinct shards whenever possible, which
    keeps micro-benchmark tenant populations balanced.
    """

    def __init__(self, shard_count: int) -> None:
        self.shard_count = self._check_shard_count(shard_count)

    def shard_of(self, ttid: int) -> int:
        """Hash the ttid into ``0 .. shard_count-1``."""
        return (int(ttid) * _HASH_MULTIPLIER % _HASH_MODULUS) % self.shard_count


class ExplicitPlacement(PlacementPolicy):
    """An operator-provided tenant → shard assignment.

    ``default_shard`` (when given) receives tenants missing from the map —
    useful when new tenants register after the cluster was laid out; without
    it an unknown tenant raises :class:`~repro.errors.ClusterError`.
    """

    def __init__(
        self,
        assignments: Mapping[int, int],
        shard_count: Optional[int] = None,
        default_shard: Optional[int] = None,
    ) -> None:
        self._assignments = {int(ttid): int(shard) for ttid, shard in assignments.items()}
        highest = max(
            [shard for shard in self._assignments.values()]
            + ([default_shard] if default_shard is not None else [-1])
        )
        self.shard_count = self._check_shard_count(
            shard_count if shard_count is not None else highest + 1
        )
        self.default_shard = default_shard
        for ttid, shard in self._assignments.items():
            if not 0 <= shard < self.shard_count:
                raise ClusterError(
                    f"tenant {ttid} is placed on shard {shard}, outside "
                    f"0..{self.shard_count - 1}"
                )
        if default_shard is not None and not 0 <= default_shard < self.shard_count:
            raise ClusterError(
                f"default shard {default_shard} is outside 0..{self.shard_count - 1}"
            )

    def shard_of(self, ttid: int) -> int:
        """Look the tenant up in the assignment map (or fall back to the default)."""
        shard = self._assignments.get(int(ttid), self.default_shard)
        if shard is None:
            raise ClusterError(
                f"tenant {ttid} has no explicit placement and no default shard"
            )
        return shard
