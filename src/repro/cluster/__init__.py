"""Sharded scatter-gather execution: tenant-partitioned backend clusters.

A single backend caps how many tenants MTBase can serve; this package scales
the reproduction out by partitioning tenants across N shards — each a full
:class:`~repro.backends.base.Backend` — and executing rewritten statements by
scatter-gather:

* :mod:`repro.cluster.placement`   — which shard owns which tenant,
* :mod:`repro.cluster.planner`     — choose the execution strategy per query
  (single-shard fast path, UNION row stream, partial-aggregate
  re-aggregation, federated fallback),
* :mod:`repro.cluster.merge`       — partial-aggregate merging and the
  coordinator-side expression evaluator,
* :mod:`repro.cluster.coordinator` — scatter the per-shard queries, gather
  and merge the results.

The user-facing entry point is :class:`repro.backends.sharded.ShardedBackend`,
which implements the ordinary backend protocol on top of these pieces — the
middleware and the gateway work unchanged over a cluster.
"""

from __future__ import annotations

from .coordinator import ShardCoordinator
from .merge import (
    BatchMergeEvaluator,
    MergeEvaluator,
    PartialAggregateState,
    distinct_rows,
    merge_partial_rows,
    sort_rows,
)
from .placement import ExplicitPlacement, HashPlacement, PlacementPolicy
from .planner import (
    ClusterCatalog,
    ClusterPlanner,
    FederatedPlan,
    PartialAggregatePlan,
    PartitionInfo,
    Plan,
    RowStreamPlan,
    SingleShardPlan,
)

__all__ = [
    "BatchMergeEvaluator",
    "ClusterCatalog",
    "ClusterPlanner",
    "ExplicitPlacement",
    "FederatedPlan",
    "HashPlacement",
    "MergeEvaluator",
    "PartialAggregatePlan",
    "PartialAggregateState",
    "PartitionInfo",
    "Plan",
    "PlacementPolicy",
    "RowStreamPlan",
    "ShardCoordinator",
    "SingleShardPlan",
    "distinct_rows",
    "merge_partial_rows",
    "sort_rows",
]
