"""Shard-count scaling experiment: cross-tenant MT-H on growing clusters.

The paper's tenant-scaling experiments (Figures 5 and 6) stop at what one
backend can hold; this suite measures the next layer — the same cross-tenant
workload executed by scatter-gather over 1, 2, 4, ... shards, reported
relative to the single-backend response time on the same data.  Three query
classes behave differently and are all represented in the default set:

* **scatter-gather aggregates** (Q1, Q3, Q6, Q12, Q18) — the shards do the
  heavy scan/aggregate work on 1/N of the tenant rows,
* **single-shard residents** (Q11) — global-table queries, unaffected,
* **federated fallbacks** (Q22) — the price of a non-decomposable query.

The companion single-tenant point (``D' = single``) exercises the
single-shard fast path: routing one tenant's query to its shard should cost
no more than the single-backend execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..mth.dbgen import TPCHData, generate
from ..mth.loader import MTHInstance, load_mth
from ..mth.queries import query_text
from .tables import time_query
from .workload import env_scale_factor

#: shard counts swept by default (1 = cluster overhead vs. a bare backend)
DEFAULT_SHARD_COUNTS = (1, 2, 4)

#: default query set: scatter-gather (1, 3, 6, 12, 18), single-shard (11),
#: federated (22)
DEFAULT_QUERY_IDS = (1, 3, 6, 11, 12, 18, 22)


@dataclass
class ShardScalingPoint:
    """One measured point of a shard-count scaling curve."""

    query_id: int
    shards: int
    dataset: str
    seconds: float
    single_seconds: float
    plan: str

    @property
    def relative(self) -> float:
        """Response time relative to the single-backend execution."""
        if self.single_seconds == 0:
            return float("nan")
        return self.seconds / self.single_seconds


@dataclass
class ShardScalingResult:
    """All points of one shard-count scaling run."""

    distribution: str
    scale_factor: float
    tenants: int
    points: list[ShardScalingPoint] = field(default_factory=list)

    def series(self, query_id: int, dataset: str = "all") -> list[tuple[int, float]]:
        """``(shards, relative time)`` pairs for one query, sorted by shards."""
        return sorted(
            (point.shards, point.relative)
            for point in self.points
            if point.query_id == query_id and point.dataset == dataset
        )

    def rows(self) -> list[dict]:
        """Flat dict rows for reporting."""
        return [
            {
                "query": point.query_id,
                "shards": point.shards,
                "dataset": point.dataset,
                "seconds": point.seconds,
                "relative": point.relative,
                "plan": point.plan,
            }
            for point in self.points
        ]


def run_shard_scaling(
    shard_counts: Sequence[int] = DEFAULT_SHARD_COUNTS,
    query_ids: Sequence[int] = DEFAULT_QUERY_IDS,
    scale_factor: Optional[float] = None,
    tenants: int = 8,
    distribution: str = "uniform",
    seed: int = 20180326,
    repetitions: int = 1,
    data: Optional[TPCHData] = None,
) -> ShardScalingResult:
    """Measure the shard-count scaling curves for the given query set.

    The same generated data is loaded once per shard count (plus once into a
    single backend as the reference); every query runs with ``D' = all`` and
    once with ``D' = {1}`` to exercise the single-shard fast path.
    """
    scale = env_scale_factor(scale_factor if scale_factor is not None else 0.002)
    if data is None:
        data = generate(scale_factor=scale, seed=seed)
    single = load_mth(data=data, tenants=tenants, distribution=distribution)
    result = ShardScalingResult(
        distribution=distribution, scale_factor=data.scale_factor, tenants=tenants
    )
    single_times = {
        (query_id, dataset): _time(single, query_id, dataset, repetitions)
        for query_id in query_ids
        for dataset in ("all", "single")
    }
    for shard_count in shard_counts:
        cluster = load_mth(
            data=data, tenants=tenants, distribution=distribution, shards=shard_count
        )
        for query_id in query_ids:
            for dataset in ("all", "single"):
                seconds = _time(cluster, query_id, dataset, repetitions)
                plan = cluster.middleware.backend.last_plan
                result.points.append(
                    ShardScalingPoint(
                        query_id=query_id,
                        shards=shard_count,
                        dataset=dataset,
                        seconds=seconds,
                        single_seconds=single_times[(query_id, dataset)],
                        plan=plan.describe() if plan is not None else "?",
                    )
                )
        cluster.middleware.backend.close()
    return result


def _time(
    instance: MTHInstance, query_id: int, dataset: str, repetitions: int
) -> float:
    connection = instance.middleware.connect(1, optimization="o4")
    connection.set_scope("IN ()" if dataset == "all" else "IN (1)")
    text = query_text(query_id)
    instance.backend.clear_function_caches()
    instance.backend.reset_stats()
    return time_query(lambda: connection.query(text), repetitions=repetitions)
