"""Experiment harness regenerating the paper's tables and figures."""

from .reporting import format_seconds, render_relative_table, render_scaling, render_table
from .scaling import DEFAULT_TENANT_COUNTS, ScalingPoint, ScalingResult, run_tenant_scaling
from .sharding import (
    DEFAULT_SHARD_COUNTS,
    ShardScalingPoint,
    ShardScalingResult,
    run_shard_scaling,
)
from .tables import (
    LEVEL_ORDER,
    TABLE_CONFIGS,
    Measurement,
    TableResult,
    run_table,
    time_query,
)
from .workload import Workload, WorkloadConfig, clear_workload_cache, load_workload

__all__ = [
    "run_table",
    "run_tenant_scaling",
    "TableResult",
    "ScalingResult",
    "ScalingPoint",
    "Measurement",
    "TABLE_CONFIGS",
    "LEVEL_ORDER",
    "DEFAULT_TENANT_COUNTS",
    "DEFAULT_SHARD_COUNTS",
    "ShardScalingPoint",
    "ShardScalingResult",
    "run_shard_scaling",
    "Workload",
    "WorkloadConfig",
    "load_workload",
    "clear_workload_cache",
    "render_table",
    "render_relative_table",
    "render_scaling",
    "format_seconds",
    "time_query",
]
