"""Plain-text rendering of benchmark results in the paper's table layout."""

from __future__ import annotations

from typing import Sequence

from .scaling import ScalingResult
from .tables import LEVEL_ORDER, TableResult


def format_seconds(value: float) -> str:
    """Two significant digits, like the paper's tables."""
    if value >= 100:
        return f"{value:.0f}"
    if value >= 10:
        return f"{value:.1f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def render_table(result: TableResult, query_ids: Sequence[int] | None = None) -> str:
    """Render a response-time table: one row per optimization level."""
    if query_ids is None:
        query_ids = sorted({query_id for _, query_id in result.cells})
    header = ["Level".ljust(10)] + [f"Q{query_id:02d}".rjust(8) for query_id in query_ids]
    lines = [
        f"Table {result.table_id} — profile={result.config.profile}, "
        f"sf={result.config.scale_factor}, T={result.config.tenants}, "
        f"D={result.dataset}, C={result.client} (response times in seconds)",
        "".join(header),
    ]
    baseline_cells = ["tpch".ljust(10)]
    for query_id in query_ids:
        cell = result.baseline.get(query_id)
        baseline_cells.append(format_seconds(cell.seconds).rjust(8) if cell else "-".rjust(8))
    lines.append("".join(baseline_cells))
    for level in LEVEL_ORDER:
        row = [level.value.ljust(10)]
        for query_id in query_ids:
            cell = result.cells.get((level.value, query_id))
            row.append(format_seconds(cell.seconds).rjust(8) if cell else "-".rjust(8))
        lines.append("".join(row))
    return "\n".join(lines)


def render_relative_table(result: TableResult, query_ids: Sequence[int] | None = None) -> str:
    """Render the same grid as multiples of the TPC-H baseline."""
    if query_ids is None:
        query_ids = sorted({query_id for _, query_id in result.cells})
    lines = [
        f"Table {result.table_id} — response time relative to the TPC-H baseline",
        "".join(["Level".ljust(10)] + [f"Q{query_id:02d}".rjust(8) for query_id in query_ids]),
    ]
    for level in LEVEL_ORDER:
        row = [level.value.ljust(10)]
        for query_id in query_ids:
            relative = result.relative(level.value, query_id)
            row.append(f"{relative:.2f}x".rjust(8) if relative is not None else "-".rjust(8))
        lines.append("".join(row))
    return "\n".join(lines)


def render_scaling(result: ScalingResult) -> str:
    """Render a tenant-scaling figure as one block per query."""
    lines = [f"Figure {result.figure_id} — profile={result.profile} (relative to TPC-H)"]
    query_ids = sorted({point.query_id for point in result.points})
    levels = sorted({point.level for point in result.points})
    for query_id in query_ids:
        lines.append(f"  MT-H Query {query_id}")
        tenants = sorted({point.tenants for point in result.points if point.query_id == query_id})
        header = ["    level".ljust(14)] + [f"T={count}".rjust(10) for count in tenants]
        lines.append("".join(header))
        for level in levels:
            series = dict(result.series(query_id, level))
            row = [f"    {level}".ljust(14)]
            for count in tenants:
                value = series.get(count)
                row.append(f"{value:.2f}x".rjust(10) if value is not None else "-".rjust(10))
            lines.append("".join(row))
    return "\n".join(lines)
