"""Benchmark workload setup: the paper's two scenarios plus custom configs.

* **Scenario 1** (§6.2) — a business alliance of ten small enterprises:
  ``T = 10``, uniform tenant shares, moderate scale factor.
* **Scenario 2** — a large medical-records database queried by a research
  institution: zipfian shares, ``D`` = all tenants, ``T`` swept over several
  orders of magnitude.

Scale factors are micro-scale by default (a pure-Python engine stands in for
PostgreSQL / System C); the harness always reports response times *relative
to the single-tenant TPC-H baseline on the same data*, which is the unit the
paper's figures use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..backends import BACKEND_NAMES, BackendConnection, create_backend
from ..core.middleware import MTBase
from ..core.optimizer.levels import OptimizationLevel
from ..errors import ConfigurationError
from ..gateway import GatewaySession, QueryGateway
from ..mth.dbgen import TPCHData, generate
from ..mth.loader import MTHInstance, load_mth, load_tpch_baseline


def env_scale_factor(default: Optional[float]) -> Optional[float]:
    """Scale factor override via ``REPRO_BENCH_SF`` (used by the pytest benches)."""
    value = os.environ.get("REPRO_BENCH_SF")
    if not value:
        return default
    try:
        return float(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"the REPRO_BENCH_SF environment variable must be a number "
            f"(a TPC-H scale factor such as 0.002), got {value!r}"
        ) from exc


def env_full(default: bool = False) -> bool:
    """Full-sweep override via ``REPRO_BENCH_FULL`` (``0`` or ``1``).

    ``1`` runs all 22 queries, all six optimization levels and the extended
    tenant/shard sweeps; anything other than the two literal flags raises
    :class:`~repro.errors.ConfigurationError` — a sweep that silently fell
    back to the short grid would publish partial figures as if complete.
    """
    value = os.environ.get("REPRO_BENCH_FULL", "").strip()
    if not value:
        return default
    if value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_BENCH_FULL environment variable must be '0' or '1' "
        f"(got {value!r})"
    )


def env_json(default: Optional[str] = None) -> Optional[str]:
    """Summary-JSON path override via ``REPRO_BENCH_JSON``.

    Returns the path the harness should write its per-query median-timing
    summary to, or ``default`` when unset.  The parent directory must
    already exist — failing at configuration time beats a full benchmark
    sweep that dies on the final write.
    """
    value = os.environ.get("REPRO_BENCH_JSON", "").strip()
    if not value:
        return default
    parent = os.path.dirname(value) or "."
    if not os.path.isdir(parent):
        raise ConfigurationError(
            f"the REPRO_BENCH_JSON environment variable points into a "
            f"missing directory {parent!r} (got {value!r})"
        )
    return value


def env_backend(default: str = "engine") -> str:
    """Execution-backend override via ``REPRO_BENCH_BACKEND`` (engine/sqlite).

    Lets the table/figure benchmarks run on a real database engine: with
    ``REPRO_BENCH_BACKEND=sqlite`` both the MT-H instance and the TPC-H
    baseline are loaded into SQLite and every measured statement executes
    there.
    """
    value = os.environ.get("REPRO_BENCH_BACKEND", "").strip().lower()
    if not value:
        return default
    if value.split(":")[0] not in BACKEND_NAMES:
        raise ConfigurationError(
            f"the REPRO_BENCH_BACKEND environment variable must be one of "
            f"{', '.join(BACKEND_NAMES)}, got {value!r}"
        )
    return value


def env_level(default: str = "o4") -> str:
    """Optimization-level override via ``REPRO_BENCH_LEVEL``.

    Sets the default level of :meth:`Workload.connection` /
    :meth:`Workload.gateway_session` (callers that pass ``optimization=``
    explicitly — like the per-level table sweeps — are unaffected), so the
    whole harness and the CI matrix can run at any Table-6 level.
    """
    value = os.environ.get("REPRO_BENCH_LEVEL", "").strip()
    if not value:
        return default
    try:
        return OptimizationLevel.from_name(value).value
    except ValueError as exc:
        raise ConfigurationError(
            f"the REPRO_BENCH_LEVEL environment variable must be one of "
            f"{', '.join(OptimizationLevel.levels())}, got {value!r}"
        ) from exc


def env_shards(default: int = 0) -> int:
    """Shard-count override via ``REPRO_BENCH_SHARDS``.

    A positive value loads the MT-H side of every workload onto a
    tenant-partitioned cluster of that many backends (of the
    ``REPRO_BENCH_BACKEND`` family); ``0`` (the default) keeps the single
    backend.  The TPC-H baseline is never sharded — the paper's unit of
    measure is "relative to single-backend TPC-H on the same data".
    """
    value = os.environ.get("REPRO_BENCH_SHARDS", "").strip()
    if not value:
        return default
    try:
        shards = int(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"the REPRO_BENCH_SHARDS environment variable must be a "
            f"non-negative integer shard count, got {value!r}"
        ) from exc
    if shards < 0:
        raise ConfigurationError(
            f"the REPRO_BENCH_SHARDS environment variable must be a "
            f"non-negative integer shard count, got {value!r}"
        )
    return shards


@dataclass
class WorkloadConfig:
    """Parameters of one benchmark workload."""

    scale_factor: float = 0.002
    tenants: int = 10
    distribution: str = "uniform"
    profile: str = "postgres"
    seed: int = 20180326
    backend: str = field(default_factory=env_backend)
    #: 0 = single backend; N > 0 = N-shard tenant-partitioned cluster
    shards: int = field(default_factory=env_shards)
    #: default optimization level for connections/sessions opened without one
    level: str = field(default_factory=env_level)

    @classmethod
    def scenario1(cls, profile: str = "postgres", scale_factor: Optional[float] = None) -> "WorkloadConfig":
        """§6.2's business alliance: 10 tenants, uniform shares."""
        return cls(
            scale_factor=env_scale_factor(scale_factor if scale_factor is not None else 0.002),
            tenants=10,
            distribution="uniform",
            profile=profile,
        )

    @classmethod
    def scenario2(
        cls, tenants: int, profile: str = "postgres", scale_factor: Optional[float] = None
    ) -> "WorkloadConfig":
        """The research-institution scenario: zipfian shares, swept tenant counts."""
        return cls(
            scale_factor=env_scale_factor(scale_factor if scale_factor is not None else 0.002),
            tenants=tenants,
            distribution="zipf",
            profile=profile,
        )


@dataclass
class Workload:
    """A loaded workload: the MT-H instance and its TPC-H baseline."""

    config: WorkloadConfig
    data: TPCHData
    mth: MTHInstance
    baseline: BackendConnection
    _gateway: Optional[QueryGateway] = field(default=None, repr=False, compare=False)

    @property
    def middleware(self) -> MTBase:
        """The MT-H instance's MTBase middleware."""
        return self.mth.middleware

    @property
    def backend(self) -> BackendConnection:
        """The execution backend serving the MT-H side of the workload."""
        return self.mth.middleware.backend

    def connection(
        self, client: int = 1, optimization: Optional[str] = None, dataset: str = "all"
    ):
        """Open a client connection with the scope the experiments use.

        ``dataset`` is either ``"all"`` (empty IN list = every tenant) or an
        explicit scope string such as ``"IN (1)"``; ``optimization=None``
        uses the workload's configured level (``REPRO_BENCH_LEVEL``-aware).
        """
        connection = self.middleware.connect(
            client, optimization=optimization if optimization is not None else self.config.level
        )
        connection.set_scope("IN ()" if dataset == "all" else dataset)
        return connection

    def gateway(self, cache_size: Optional[int] = None) -> QueryGateway:
        """The (lazily created, shared) query gateway over this workload.

        ``cache_size=None`` reuses whatever gateway exists (creating one with
        the default capacity if none does); an explicit size that differs
        from the cached gateway's capacity replaces it (the old one keeps
        serving its existing sessions).
        """
        if self._gateway is None:
            self._gateway = self.middleware.gateway(
                cache_size=cache_size if cache_size is not None else 256
            )
        elif cache_size is not None and self._gateway.cache.capacity != cache_size:
            self._gateway.close()  # detach its metadata listener before replacing
            self._gateway = self.middleware.gateway(cache_size=cache_size)
        return self._gateway

    def gateway_session(
        self, client: int = 1, optimization: Optional[str] = None, dataset: str = "all"
    ) -> GatewaySession:
        """Like :meth:`connection`, but served through the query gateway."""
        return self.gateway().session(
            client,
            optimization=optimization if optimization is not None else self.config.level,
            scope="IN ()" if dataset == "all" else dataset,
        )

    def reset_caches(self) -> None:
        """Clear UDF result caches and statistics before a timed run."""
        self.backend.clear_function_caches()
        self.backend.reset_stats()
        self.baseline.clear_function_caches()
        self.baseline.reset_stats()


_WORKLOAD_CACHE: dict[tuple, Workload] = {}


def load_workload(config: WorkloadConfig, use_cache: bool = True) -> Workload:
    """Load (and memoize) a workload: generating data dominates set-up time."""
    key = (
        config.scale_factor,
        config.tenants,
        config.distribution,
        config.profile,
        config.seed,
        config.backend,
        config.shards,
        config.level,
    )
    if use_cache and key in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE[key]
    data = generate(scale_factor=config.scale_factor, seed=config.seed)
    if config.shards:
        if config.backend.startswith("sharded"):
            raise ConfigurationError(
                "REPRO_BENCH_SHARDS shards the chosen backend family; "
                "combine it with REPRO_BENCH_BACKEND=engine|sqlite, not "
                "with an already-sharded backend spec"
            )
        mth = load_mth(
            data=data,
            tenants=config.tenants,
            distribution=config.distribution,
            profile=config.profile,
            backend=config.backend,
            shards=config.shards,
        )
    else:
        mth = load_mth(
            data=data,
            tenants=config.tenants,
            distribution=config.distribution,
            profile=config.profile,
            backend=create_backend(config.backend, profile=config.profile),
        )
    baseline = load_tpch_baseline(
        data=data,
        profile=config.profile,
        backend=create_backend(config.backend, profile=config.profile),
    )
    workload = Workload(config=config, data=data, mth=mth, baseline=baseline)
    if use_cache:
        _WORKLOAD_CACHE[key] = workload
    return workload


def clear_workload_cache() -> None:
    """Drop every memoized workload (tests that mutate workloads call this)."""
    _WORKLOAD_CACHE.clear()
