"""Tenant-scaling experiment (Figures 5 and 6 of the paper).

For the conversion-intensive queries Q1, Q6 and Q22 the experiment measures
MT-H response time *relative to plain TPC-H on the same data* while the
number of tenants grows, for the best optimization level (o4) and for
inlining-only.  Figure 5 uses the PostgreSQL-like profile, Figure 6 the
System-C-like profile (no UDF result caching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..mth.queries import CONVERSION_INTENSIVE, query_text
from .tables import time_query
from .workload import WorkloadConfig, load_workload

#: default tenant counts swept by the reproduction (the paper goes to 100 000
#: at sf = 100; at micro scale the data only supports a few thousand tenants)
DEFAULT_TENANT_COUNTS = (1, 2, 5, 10, 50, 100)


@dataclass
class ScalingPoint:
    """One measured point of a tenant-scaling curve."""

    query_id: int
    level: str
    tenants: int
    seconds: float
    baseline_seconds: float

    @property
    def relative(self) -> float:
        if self.baseline_seconds == 0:
            return float("nan")
        return self.seconds / self.baseline_seconds


@dataclass
class ScalingResult:
    """All points of one tenant-scaling figure."""

    figure_id: str
    profile: str
    points: list[ScalingPoint] = field(default_factory=list)

    def series(self, query_id: int, level: str) -> list[tuple[int, float]]:
        return sorted(
            (point.tenants, point.relative)
            for point in self.points
            if point.query_id == query_id and point.level == level
        )

    def rows(self) -> list[dict]:
        return [
            {
                "figure": self.figure_id,
                "query": point.query_id,
                "level": point.level,
                "tenants": point.tenants,
                "seconds": point.seconds,
                "relative": point.relative,
            }
            for point in self.points
        ]


def run_tenant_scaling(
    profile: str = "postgres",
    tenant_counts: Sequence[int] = DEFAULT_TENANT_COUNTS,
    query_ids: Sequence[int] = CONVERSION_INTENSIVE,
    levels: Iterable[str] = ("o4", "inl-only"),
    scale_factor: Optional[float] = None,
    repetitions: int = 1,
) -> ScalingResult:
    """Measure the Figure-5 (postgres) or Figure-6 (system_c) curves."""
    figure_id = "5" if profile == "postgres" else "6"
    result = ScalingResult(figure_id=figure_id, profile=profile)
    for tenants in tenant_counts:
        config = WorkloadConfig.scenario2(tenants=tenants, profile=profile, scale_factor=scale_factor)
        workload = load_workload(config)
        for query_id in query_ids:
            text = query_text(query_id)
            workload.reset_caches()
            baseline_seconds = time_query(lambda: workload.baseline.query(text), repetitions)
            for level in levels:
                connection = workload.connection(client=1, optimization=level, dataset="all")
                workload.reset_caches()
                seconds = time_query(lambda: connection.query(text), repetitions)
                result.points.append(
                    ScalingPoint(
                        query_id=query_id,
                        level=level,
                        tenants=tenants,
                        seconds=seconds,
                        baseline_seconds=baseline_seconds,
                    )
                )
    return result
