"""Regeneration of the paper's response-time tables (Tables 3-5 and 7-9).

Each table reports the response times of the 22 MT-H queries for every
optimization level, for one combination of back-end profile and data set D,
next to the plain TPC-H baseline:

========  ==========  ==========  =============
table id  profile     data set D  baseline
========  ==========  ==========  =============
3         postgres    {1}         TPC-H (1/T of the data)
4         postgres    {2}         TPC-H (1/T of the data)
5         postgres    {1..T}      TPC-H (all data)
7         system_c    {1}         TPC-H (1/T of the data)
8         system_c    {2}         TPC-H (1/T of the data)
9         system_c    {1..T}      TPC-H (all data)
========  ==========  ==========  =============

The paper runs the D={1} / D={2} rows against a TPC-H instance that is ten
times smaller; here the baseline column always measures the same query on the
single-tenant database holding all generated rows, and the per-level rows are
what changes — relative comparisons between optimization levels (the point of
the tables) are unaffected.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..core.optimizer.levels import ALL_LEVELS, OptimizationLevel
from ..mth.queries import ALL_QUERY_IDS, query_text
from .workload import Workload, WorkloadConfig, load_workload

#: the experiment grid of the paper's six response-time tables
TABLE_CONFIGS: dict[str, dict] = {
    "3": {"profile": "postgres", "dataset": "IN (1)", "client": 1},
    "4": {"profile": "postgres", "dataset": "IN (2)", "client": 1},
    "5": {"profile": "postgres", "dataset": "all", "client": 1},
    "7": {"profile": "system_c", "dataset": "IN (1)", "client": 1},
    "8": {"profile": "system_c", "dataset": "IN (2)", "client": 1},
    "9": {"profile": "system_c", "dataset": "all", "client": 1},
}

#: optimization levels in the order the paper's tables list them
LEVEL_ORDER = (
    OptimizationLevel.CANONICAL,
    OptimizationLevel.O1,
    OptimizationLevel.O2,
    OptimizationLevel.O3,
    OptimizationLevel.O4,
    OptimizationLevel.INL_ONLY,
)


@dataclass
class Measurement:
    """One measured cell: query response time plus UDF-call counters."""

    query_id: int
    level: str
    seconds: float
    udf_calls: int = 0
    udf_executions: int = 0
    rows: int = 0


@dataclass
class TableResult:
    """The full grid of one response-time table."""

    table_id: str
    config: WorkloadConfig
    dataset: str
    client: int
    baseline: dict[int, Measurement] = field(default_factory=dict)
    cells: dict[tuple[str, int], Measurement] = field(default_factory=dict)

    def relative(self, level: str, query_id: int) -> Optional[float]:
        cell = self.cells.get((level, query_id))
        base = self.baseline.get(query_id)
        if cell is None or base is None or base.seconds == 0:
            return None
        return cell.seconds / base.seconds

    def rows(self) -> list[dict]:
        """Flat records (handy for reporting and for tests)."""
        records = []
        for (level, query_id), cell in sorted(self.cells.items()):
            records.append(
                {
                    "table": self.table_id,
                    "level": level,
                    "query": query_id,
                    "seconds": cell.seconds,
                    "relative": self.relative(level, query_id),
                    "udf_calls": cell.udf_calls,
                }
            )
        return records


def time_query(database_runner, repetitions: int = 1) -> float:
    """Best-of-N wall-clock time of a callable (the paper reports the third run)."""
    best = float("inf")
    for _ in range(max(1, repetitions)):
        start = time.perf_counter()
        database_runner()
        best = min(best, time.perf_counter() - start)
    return best


def run_table(
    table_id: str,
    query_ids: Sequence[int] = ALL_QUERY_IDS,
    levels: Iterable[OptimizationLevel] = LEVEL_ORDER,
    scale_factor: Optional[float] = None,
    tenants: int = 10,
    repetitions: int = 1,
    workload: Optional[Workload] = None,
) -> TableResult:
    """Measure one of the paper's response-time tables.

    ``query_ids`` defaults to all 22 queries; the pytest benchmark wrappers
    restrict it to a representative subset to keep CI runs short.
    """
    if table_id not in TABLE_CONFIGS:
        raise KeyError(f"unknown table {table_id!r}; expected one of {sorted(TABLE_CONFIGS)}")
    spec = TABLE_CONFIGS[table_id]
    if workload is None:
        config = WorkloadConfig.scenario1(profile=spec["profile"], scale_factor=scale_factor)
        config.tenants = tenants
        workload = load_workload(config)
    result = TableResult(
        table_id=table_id,
        config=workload.config,
        dataset=spec["dataset"],
        client=spec["client"],
    )

    for query_id in query_ids:
        text = query_text(query_id)
        workload.reset_caches()
        seconds = time_query(lambda: workload.baseline.query(text), repetitions)
        result.baseline[query_id] = Measurement(query_id=query_id, level="tpch", seconds=seconds)

    for level in levels:
        connection = workload.connection(
            client=spec["client"], optimization=level.value, dataset=spec["dataset"]
        )
        for query_id in query_ids:
            text = query_text(query_id)
            workload.reset_caches()
            backend = workload.backend
            seconds = time_query(lambda: connection.query(text), repetitions)
            # a sharded cluster counts UDF calls on its shards, not the
            # coordinator; aggregate_stats() sums them (plain backends lack it)
            aggregate = getattr(backend, "aggregate_stats", None)
            stats = aggregate() if aggregate is not None else backend.stats
            result.cells[(level.value, query_id)] = Measurement(
                query_id=query_id,
                level=level.value,
                seconds=seconds,
                udf_calls=stats.udf_calls,
                udf_executions=stats.udf_executions,
            )
    return result
