"""The in-memory engine as an execution backend.

:class:`EngineBackend` adapts :class:`repro.engine.database.Database` — the
pure-Python DBMS stand-in with its "postgres" / "system_c" UDF-caching
profiles — to the :class:`~repro.backends.base.Backend` protocol.  The
adapter is thin: the engine already executes the default dialect natively,
so statements pass through unchanged (parameters are bound by literal
substitution, the engine's SQL-function convention).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from ..engine.database import Database
from ..errors import BackendError
from ..result import ExecuteResult, ExecutionStats, RowStream
from ..sql import ast
from ..sql.dialect import DEFAULT_DIALECT
from ..sql.params import bind_parameters
from ..sql.parser import parse_statement
from ..sql.transform import transform_expression, transform_select
from .base import Backend, BackendConnection, Statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile.artifact import CompiledQuery
    from ..compile.stats import StatisticsCatalog


class EngineConnection(BackendConnection):
    """A connection to the in-memory engine (shared-state, thread-aware)."""

    name = "engine"
    dialect = DEFAULT_DIALECT

    def __init__(self, database: Database) -> None:
        self._database = database

    # -- engine access -------------------------------------------------------

    @property
    def engine_database(self) -> Database:
        """The wrapped in-memory :class:`Database` (engine-specific escape hatch)."""
        return self._database

    @property
    def stats(self) -> ExecutionStats:  # type: ignore[override]
        """The engine database's statement/UDF counters."""
        return self._database.stats

    @property
    def profile(self):
        """The UDF-caching profile ("postgres" caches, "system_c" does not)."""
        return self._database.profile

    def __getattr__(self, attribute: str):
        # Back-compat: pre-backend code reached into Database internals
        # (catalog, executor, ...); delegate anything the protocol lacks.
        return getattr(self._database, attribute)

    # -- statement execution -------------------------------------------------

    def execute(
        self, statement: Statement, parameters: Optional[Sequence[Any]] = None
    ) -> ExecuteResult:
        """Execute on the in-memory engine (parameters bound as literals)."""
        if parameters:
            if isinstance(statement, str):
                statement = parse_statement(statement)
            statement = _bind_parameters(statement, parameters)
        return self._database.execute(statement)

    def execute_scoped(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> ExecuteResult:
        """Execute a compiled statement, forwarding its semantic facts.

        ``dataset`` is routing metadata a single-database backend ignores,
        but ``compiled.facts`` matters here: the engine selects its
        null-check-free (*proven*) kernel variants from the analyzer's
        proven-NOT-NULL sets, so statements that went through the compiler
        run faster than bare ``execute()`` calls.
        """
        if parameters:
            if isinstance(statement, str):
                statement = parse_statement(statement)
            statement = _bind_parameters(statement, parameters)
        facts = compiled.facts if compiled is not None else None
        return self._database.execute(statement, facts=facts)

    def execute_stream(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> RowStream:
        """Stream a SELECT through the engine's lazy pipeline.

        Streamable shapes (no grouping/ORDER BY/DISTINCT) yield their first
        row having evaluated only that row; barrier shapes materialize
        internally and replay.  ``dataset`` is routing metadata a
        single-database backend ignores; ``compiled.facts`` selects proven
        kernel variants exactly like :meth:`execute_scoped`.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if parameters:
            statement = _bind_parameters(statement, parameters)
        if not isinstance(statement, ast.Select):
            raise BackendError("execute_stream() expects a SELECT statement")
        facts = compiled.facts if compiled is not None else None
        return self._database.execute_stream(statement, facts=facts)

    # -- UDF registration ----------------------------------------------------

    def register_python_function(
        self, name: str, fn: Callable[..., Any], immutable: bool = False
    ) -> None:
        """Register a Python-backed scalar UDF in the engine catalog."""
        self._database.register_python_function(name, fn, immutable=immutable)

    def register_sql_function(
        self, name: str, body: str, immutable: bool = False
    ) -> None:
        """Register a SQL-bodied scalar UDF in the engine catalog."""
        self._database.register_sql_function(name, body, immutable=immutable)

    # -- bulk load / metadata ------------------------------------------------

    def insert_rows(self, table_name: str, rows: list[tuple]) -> int:
        """Bulk-load rows straight into the engine's storage layer."""
        return self._database.insert_rows(table_name, rows)

    def table_rowcount(self, table_name: str) -> int:
        """Current row count of ``table_name``."""
        return self._database.table_rowcount(table_name)

    def check_integrity(self) -> list[str]:
        """Run the engine's PK/FK validation over every table."""
        return self._database.check_integrity()

    # -- statistics / caches -------------------------------------------------

    def register_partitioned_table(
        self,
        table_name: str,
        ttid_column: str,
        local_key_columns: Sequence[str] = (),
    ) -> None:
        """Record the tenant column so statistics gain per-tenant histograms."""
        self._database.register_partitioned_table(
            table_name, ttid_column, local_key_columns
        )

    def collect_statistics(self) -> "StatisticsCatalog":
        """Scan every engine table into fresh planner statistics."""
        return self._database.collect_statistics()

    def statistics(self) -> "StatisticsCatalog":
        """The engine's current (lazily refreshed) statistics catalog."""
        return self._database.statistics()

    def reset_stats(self) -> None:
        """Zero the engine's statement/UDF counters."""
        self._database.reset_stats()

    def clear_function_caches(self) -> None:
        """Drop the engine's memoized immutable-UDF results."""
        self._database.clear_function_caches()


class EngineBackend(Backend):
    """Backend over one in-memory engine database."""

    name = "engine"
    dialect = DEFAULT_DIALECT

    def __init__(
        self,
        profile: str = "postgres",
        database: Optional[Database] = None,
    ) -> None:
        self.database = database if database is not None else Database(profile)
        self._connection = EngineConnection(self.database)

    def connect(self) -> EngineConnection:
        """The shared connection to this backend's in-memory database."""
        return self._connection


def _bind_parameters(
    statement: ast.Statement, parameters: Sequence[Any]
) -> ast.Statement:
    """Substitute parameter references with literal values.

    Two placeholder conventions bind here: ``?``/``:name``
    :class:`~repro.sql.ast.Parameter` nodes (the DB-API surface, handled by
    :func:`repro.sql.params.bind_parameters`) and the engine's historic
    ``$n`` column references (the SQL-function parameter convention).
    """
    dialect = DEFAULT_DIALECT

    def replacer(node: ast.Expression) -> Optional[ast.Expression]:
        if isinstance(node, ast.Column) and node.table is None:
            index = dialect.parameter_index(node.name)
            if index is not None:
                if not 1 <= index <= len(parameters):
                    raise BackendError(
                        f"statement references ${index} but only "
                        f"{len(parameters)} parameter(s) were supplied"
                    )
                return ast.Literal(parameters[index - 1])
        return None

    statement = bind_parameters(statement, parameters)
    if isinstance(statement, ast.Select):
        return transform_select(statement, replacer)
    if isinstance(statement, ast.Insert):
        if statement.query is not None:
            raise BackendError("parameterized INSERT ... SELECT is not supported")
        rows = [
            tuple(transform_expression(value, replacer) for value in row)
            for row in statement.rows
        ]
        return ast.Insert(table=statement.table, columns=statement.columns, rows=rows)
    if isinstance(statement, ast.Update):
        return ast.Update(
            table=statement.table,
            assignments=[
                ast.Assignment(
                    column=assignment.column,
                    value=transform_expression(assignment.value, replacer),
                )
                for assignment in statement.assignments
            ],
            where=transform_expression(statement.where, replacer),
        )
    if isinstance(statement, ast.Delete):
        return ast.Delete(
            table=statement.table,
            where=transform_expression(statement.where, replacer),
        )
    raise BackendError(
        f"cannot bind parameters into a {type(statement).__name__} statement"
    )
