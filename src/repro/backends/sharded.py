"""A tenant-partitioned cluster of backends behind the ordinary protocol.

:class:`ShardedBackend` owns N *shards* — each a complete
:class:`~repro.backends.base.Backend` (engine, SQLite, ...) — and presents
them as one :class:`~repro.backends.base.BackendConnection`, so the MTBase
middleware and the gateway work over a cluster unchanged:

* **DDL and UDF registrations broadcast** to every shard (each shard holds
  the full physical schema and the conversion functions),
* **global tables replicate**: inserts into non-partitioned tables land on
  every shard, so joins against them stay shard-local,
* **tenant-specific rows route** by the placement policy: each owned row
  lives on exactly one shard (bulk loads and rewritten per-owner INSERTs),
* **queries scatter-gather** through the :mod:`repro.cluster` planner and
  coordinator: single-shard fast path when ``D'`` lands on one shard, UNION
  merging for row streams, partial-aggregate re-aggregation for aggregate
  queries, and a *federated* fallback — pull the referenced base rows into a
  scratch backend and execute there — for queries that do not decompose.

The federated fallback is what makes the cluster exact rather than
approximate: `tests/cluster/test_shard_invariance.py` proves every MT-H
query row-set-identical to a single backend for shards ∈ {1, 2, 4}.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from ..cluster.coordinator import ShardCoordinator
from ..cluster.merge import default_scalar_functions
from ..cluster.placement import HashPlacement, PlacementPolicy
from ..cluster.planner import (
    ClusterCatalog,
    ClusterPlanner,
    FederatedPlan,
    PartitionInfo,
    Plan,
    SingleShardPlan,
)
from ..compile.cost import CostConfig, TablePrefilter
from ..compile.stats import StatisticsCatalog, merge_catalogs
from ..errors import ClusterError
from ..result import ExecuteResult, ExecutionStats, RowStream, StatementResult
from ..sql import ast
from ..sql.dialect import Dialect
from ..sql.params import bind_parameters, statement_parameters
from ..sql.parser import parse_statement
from ..sql.types import Date
from .base import Backend, BackendConnection, Statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile.artifact import CompiledQuery


@dataclass(frozen=True)
class _TableSchema:
    """Column order of one physical table (for routing column-less INSERTs)."""

    name: str
    columns: tuple[str, ...]
    column_defs: tuple[ast.ColumnDef, ...] = ()

    def placeholder(self, column: ast.ColumnDef) -> Any:
        """A type-appropriate dummy for a column the pull projected away.

        ``None`` for nullable columns; NOT NULL columns get a neutral value
        of their declared type so the scratch insert passes its NOT NULL
        check.  Unreferenced by the query, the value is never observed.
        """
        if not column.not_null:
            return None
        type_name = column.type_name.upper()
        if type_name.startswith(("INT", "BIGINT", "SMALLINT", "DECIMAL", "NUMERIC")):
            return 0
        if type_name.startswith(("FLOAT", "DOUBLE", "REAL")):
            return 0.0
        if type_name.startswith("DATE"):
            return Date(0)
        return ""


class _ClusterDialect:
    """The shard dialect with a cluster-distinct name.

    Rewritten plans cached by the gateway are keyed on the dialect *name*; a
    sharded connection must never share cache accounting with a plain
    connection of the same dialect, so the name carries the shard count.
    Everything else delegates to the shards' real dialect.
    """

    def __init__(self, inner: Dialect, shard_count: int) -> None:
        self._inner = inner
        self.name = f"{inner.name}+{shard_count}sh"

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self._inner, attribute)

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"_ClusterDialect({self.name!r})"


class ShardedConnection(BackendConnection):
    """One logical connection fanning out over the cluster's shards."""

    name = "sharded"

    def __init__(self, backend: "ShardedBackend") -> None:
        self._backend = backend
        self._shards: list[BackendConnection] = [
            shard.connect() for shard in backend.shards
        ]
        self.placement = backend.placement
        self.dialect = _ClusterDialect(self._shards[0].dialect, len(self._shards))
        self.stats = ExecutionStats()
        self.catalog = ClusterCatalog()
        self._merge_functions = default_scalar_functions()
        #: physical column order per table, shared with the planner's cost
        #: pass (maintained by :meth:`_execute_ddl`)
        self._columns_of: dict[str, tuple[str, ...]] = {}
        self.planner = ClusterPlanner(
            self.catalog,
            scatter_gather=backend.scatter_gather,
            functions=self._merge_functions,
            cost=CostConfig.from_env(),
            columns_of=self._columns_of,
            statistics_provider=self.statistics,
            udf_statements_provider=self._sql_udf_statements,
        )
        self.coordinator = ShardCoordinator(
            self._shards, functions=self._merge_functions
        )
        #: the most recent query plan, for tests/examples/monitoring
        self.last_plan: Optional[Plan] = None
        #: plans served from a CompiledQuery's attachment memo (warm cache hits)
        self.plan_reuses = 0
        self._tables: dict[str, _TableSchema] = {}
        self._ddl_log: list[ast.Statement] = []
        self._udf_log: list[tuple[str, str, Any, bool]] = []
        self._udf_support_tables: Optional[set[str]] = None
        self._udf_statement_cache: Optional[tuple[ast.Select, ...]] = None
        self._scratch: Optional[BackendConnection] = None
        self._scratch_backend: Optional[Backend] = None
        #: per-table scratch freshness: ``(dataset, prefilter, columns)`` of
        #: the last sync — dataset ``None`` = all tenants, prefilter ``None``
        #: = unfiltered, columns ``None`` = full width; absent = stale.
        #: A less restricted copy serves a more restricted request (see
        #: :meth:`_scratch_serves`).
        self._scratch_state: dict[
            str,
            tuple[
                Optional[frozenset[int]], Optional[str], Optional[frozenset[str]]
            ],
        ] = {}
        #: federated pull volume, for benchmarks: base rows / cells copied
        #: from shards into the scratch backend, and how many of those table
        #: syncs ran with a pushed-down prefilter
        self.rows_pulled = 0
        self.cells_pulled = 0
        self.prefiltered_syncs = 0
        self._lock = threading.RLock()

    # -- shard access ---------------------------------------------------------

    @property
    def shard_connections(self) -> tuple[BackendConnection, ...]:
        """The per-shard connections, in shard order."""
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        """Number of shards in the cluster."""
        return len(self._shards)

    # -- statement execution ---------------------------------------------------

    def execute(
        self, statement: Statement, parameters: Optional[Sequence[Any]] = None
    ) -> ExecuteResult:
        """Execute one statement on the cluster (scatter-gather for SELECTs)."""
        return self.execute_scoped(statement, dataset=None, parameters=parameters)

    def execute_scoped(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> ExecuteResult:
        """Execute a statement, pruning the shard fan-out to ``dataset``'s shards.

        ``compiled`` (a middleware-compiled statement's artifact) lets the
        planner consume the precomputed shardability analysis and lets this
        connection memoize the resulting plan on the artifact, so a gateway
        cache hit re-executes without planning at all.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        self.stats.add(statements=1)
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, dataset, parameters, compiled)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, (ast.Update, ast.Delete)):
            return self._execute_update_delete(statement, parameters)
        if isinstance(
            statement,
            (ast.CreateTable, ast.CreateView, ast.CreateFunction, ast.DropTable, ast.DropView),
        ):
            return self._execute_ddl(statement)
        raise ClusterError(
            f"the sharded backend cannot execute {type(statement).__name__} statements"
        )

    # -- SELECT ---------------------------------------------------------------

    def _execute_select(
        self,
        statement: ast.Select,
        dataset: Optional[Sequence[int]],
        parameters: Optional[Sequence[Any]],
        compiled: Optional["CompiledQuery"] = None,
    ) -> ExecuteResult:
        plan = self._resolve_plan(statement, dataset, compiled)
        if isinstance(plan, FederatedPlan):
            return self._execute_federated(plan, dataset, parameters)
        return self.coordinator.execute(plan, parameters)

    def _resolve_plan(
        self,
        statement: ast.Select,
        dataset: Optional[Sequence[int]],
        compiled: Optional["CompiledQuery"],
    ) -> Plan:
        """The cluster plan for one SELECT, memoized on its compiled artifact.

        Plans are derived from the *parameterized* statement (bind values
        ride separately into the shards), so one memoized plan serves every
        binding of a prepared statement.
        """
        shards = self.placement.shards_for(dataset)
        plan: Optional[Plan] = None
        memo_key = None
        if compiled is not None:
            # the memo key pins the shard fan-out, the catalog version and the
            # cost switch, so DDL, a different D' or toggling the cost model
            # can never resurrect a stale plan
            memo_key = (
                "cluster-plan",
                id(self),
                tuple(shards),
                self.catalog.version,
                self.planner.cost.enabled,
            )
            with self._lock:
                plan = compiled.attachments.get(memo_key)
                if plan is not None:
                    self.plan_reuses += 1
        if plan is None:
            analysis = compiled.analysis if compiled is not None else None
            facts = compiled.facts if compiled is not None else None
            plan = self.planner.plan(
                statement,
                shards,
                analysis=analysis,
                column_owners=facts.column_owners if facts is not None else None,
            )
            if memo_key is not None:
                with self._lock:
                    compiled.attachments[memo_key] = plan
        self.last_plan = plan
        return plan

    def execute_stream(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> RowStream:
        """Stream a SELECT: incremental on the single-shard fast path.

        When ``D'`` lands on one shard the stream is the owning shard's own
        ``execute_stream`` (truly incremental for engine and SQLite shards);
        scatter-gather and federated plans must merge before the first row is
        known, so they materialize and replay.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if not isinstance(statement, ast.Select):
            raise ClusterError("execute_stream() expects a SELECT statement")
        self.stats.add(statements=1)
        plan = self._resolve_plan(statement, dataset, compiled)
        if isinstance(plan, SingleShardPlan):
            return self._shards[plan.shard].execute_stream(
                plan.statement, parameters=parameters
            )
        if isinstance(plan, FederatedPlan):
            result = self._execute_federated(plan, dataset, parameters)
        else:
            result = self.coordinator.execute(plan, parameters)
        return RowStream(columns=result.columns, rows=result.rows)

    # -- DDL ------------------------------------------------------------------

    def _execute_ddl(self, statement: ast.Statement) -> ExecuteResult:
        with self._lock:
            if isinstance(statement, ast.CreateTable):
                self._tables[statement.name.lower()] = _TableSchema(
                    name=statement.name,
                    columns=tuple(column.name for column in statement.columns),
                    column_defs=tuple(statement.columns),
                )
                self._columns_of[statement.name.lower()] = tuple(
                    column.name for column in statement.columns
                )
                self.catalog.add_relation(statement.name)
            elif isinstance(statement, ast.CreateView):
                self.catalog.add_view(statement.name)
            elif isinstance(statement, ast.DropTable):
                self._tables.pop(statement.name.lower(), None)
                self._columns_of.pop(statement.name.lower(), None)
                self.catalog.drop_relation(statement.name)
                self._scratch_state.pop(statement.name.lower(), None)
            elif isinstance(statement, ast.DropView):
                self.catalog.drop_view(statement.name)
            elif isinstance(statement, ast.CreateFunction):
                # a SQL-bodied function reads tables the query text never
                # names; recompute the federated sync set lazily
                self._udf_support_tables = None
                self._udf_statement_cache = None
            self._ddl_log.append(statement)
            result: ExecuteResult = StatementResult(type(statement).__name__)
            for shard in self._shards:
                result = shard.execute(statement)
            if self._scratch is not None:
                self._scratch.execute(statement)
            return result

    def register_partitioned_table(
        self,
        table_name: str,
        ttid_column: str,
        local_key_columns: Sequence[str] = (),
    ) -> None:
        """Record the partitioning of a tenant-specific table (middleware hook)."""
        with self._lock:
            self.catalog.set_partitioned(
                PartitionInfo(
                    table=table_name,
                    ttid_column=ttid_column,
                    local_keys=frozenset(column.lower() for column in local_key_columns),
                )
            )
            # shards hear about the tenant column too, so their statistics
            # carry the per-tenant row histograms the cost model reads
            for shard in self._shards:
                shard.register_partitioned_table(
                    table_name, ttid_column, local_key_columns
                )

    # -- DML ------------------------------------------------------------------

    def _execute_insert(
        self, statement: ast.Insert, parameters: Optional[Sequence[Any]]
    ) -> ExecuteResult:
        if statement.query is not None:
            raise ClusterError(
                "INSERT ... SELECT cannot be routed by the sharded backend; "
                "the middleware materializes it into per-owner VALUES first"
            )
        if parameters and statement_parameters(statement):
            # routing reads concrete row values (the ttid column), so bind
            # before inspecting the rows rather than passing through; $n-style
            # values (no Parameter slots) keep the historic pass-through
            statement = bind_parameters(statement, tuple(parameters))
            parameters = None
        self._mark_scratch_stale(statement.table)
        info = self.catalog.partitioned.get(statement.table.lower())
        if info is None:
            # global table: replicate on every shard
            result: ExecuteResult = StatementResult("INSERT")
            for shard in self._shards:
                result = shard.execute(statement, parameters=parameters)
            return result
        ttid_index = self._ttid_index(statement, info)
        routed: dict[int, list[tuple]] = {}
        for row in statement.rows:
            ttid_value = row[ttid_index]
            if not isinstance(ttid_value, ast.Literal) or ttid_value.value is None:
                raise ClusterError(
                    f"cannot route INSERT into {statement.table!r}: the "
                    f"{info.ttid_column} value must be a literal"
                )
            shard = self.placement.shard_of(int(ttid_value.value))
            routed.setdefault(shard, []).append(row)
        total = 0
        for shard, rows in sorted(routed.items()):
            shard_statement = ast.Insert(
                table=statement.table, columns=statement.columns, rows=rows
            )
            total += self._shards[shard].execute(
                shard_statement, parameters=parameters
            ).rowcount
        return StatementResult("INSERT", rowcount=total)

    def _ttid_index(self, statement: ast.Insert, info: PartitionInfo) -> int:
        target = info.ttid_column.lower()
        if statement.columns:
            for index, column in enumerate(statement.columns):
                if column.lower() == target:
                    return index
            raise ClusterError(
                f"cannot route INSERT into {statement.table!r}: the column list "
                f"omits the {info.ttid_column} column"
            )
        schema = self._tables.get(statement.table.lower())
        if schema is None:
            raise ClusterError(
                f"cannot route INSERT into unknown table {statement.table!r}"
            )
        for index, column in enumerate(schema.columns):
            if column.lower() == target:
                return index
        raise ClusterError(  # pragma: no cover - schema always has the ttid
            f"table {statement.table!r} has no {info.ttid_column} column"
        )

    def _execute_update_delete(
        self,
        statement: Union[ast.Update, ast.Delete],
        parameters: Optional[Sequence[Any]],
    ) -> ExecuteResult:
        from ..sql.transform import referenced_table_names

        partitioned = self.catalog.is_partitioned(statement.table)
        kind = "UPDATE" if isinstance(statement, ast.Update) else "DELETE"
        info = self.catalog.partitioned.get(statement.table.lower())
        if info is not None and isinstance(statement, ast.Update):
            # moving a row between tenants would strand it on the old
            # tenant's shard, breaking the placement invariant for good
            for assignment in statement.assignments:
                if assignment.column.lower() == info.ttid_column.lower():
                    raise ClusterError(
                        f"UPDATE must not reassign the partitioning column "
                        f"{info.ttid_column!r} of {statement.table!r}; delete "
                        f"and re-insert under the new owner instead"
                    )
        if not partitioned:
            # a replicated target whose predicate reads partitioned tables
            # (directly or through a view) would evaluate the sub-query per
            # shard against that shard's partition only, silently diverging
            # the replicas
            references = referenced_table_names(statement) - {statement.table.lower()}
            touched = sorted(
                name
                for name in references
                if name in self.catalog.partitioned or name in self.catalog.views
            )
            if touched:
                raise ClusterError(
                    f"{kind} on replicated table {statement.table!r} references "
                    f"partitioned table(s) or view(s) {touched}; per-shard "
                    f"evaluation would diverge the replicas — run it per tenant "
                    f"or against a single backend"
                )
        self._check_dml_decomposes(statement, kind)
        self._mark_scratch_stale(statement.table)
        total = 0
        first: Optional[int] = None
        for shard in self._shards:
            rowcount = shard.execute(statement, parameters=parameters).rowcount
            total += rowcount
            if first is None:
                first = rowcount
        # partitioned rows exist once across the cluster (sum); global rows
        # are replicas — report one copy's count like a single backend would
        return StatementResult(kind, rowcount=total if partitioned else (first or 0))

    def _check_dml_decomposes(
        self, statement: Union[ast.Update, ast.Delete], kind: str
    ) -> None:
        """Reject DML whose per-shard evaluation is not the global evaluation.

        Broadcasting is only sound when every sub-query in the predicate (and
        in UPDATE assignment values) is shard-local by the planner's rules —
        global-only, or probing tenant-local keys.  A cross-shard sub-query
        (e.g. ``WHERE x < (SELECT AVG(x) FROM t)`` over a partitioned ``t``)
        would mutate different rows per shard; there is no federated write
        path, so the statement is refused rather than silently corrupted.
        """
        if len(self._shards) == 1:
            return
        probe_items = (
            [ast.SelectItem(expr=assignment.value) for assignment in statement.assignments]
            if isinstance(statement, ast.Update)
            else [ast.SelectItem(expr=ast.Star())]
        ) or [ast.SelectItem(expr=ast.Star())]
        probe = ast.Select(
            items=probe_items,
            from_items=[ast.TableRef(name=statement.table)],
            where=statement.where,
        )
        if not self.planner.analyzer.stream_info(probe).ok:
            raise ClusterError(
                f"{kind} on {statement.table!r} uses a sub-query that needs "
                f"cross-shard data; per-shard evaluation would mutate the "
                f"wrong rows — rewrite it per tenant or run it against a "
                f"single backend"
            )

    # -- federated fallback ----------------------------------------------------

    def _execute_federated(
        self,
        plan: FederatedPlan,
        dataset: Optional[Sequence[int]],
        parameters: Optional[Sequence[Any]],
    ) -> ExecuteResult:
        with self._lock:
            scratch = self._ensure_scratch()
            if plan.tables is None:
                tables = set(self.catalog.relations)
            else:
                # SQL-bodied UDFs (the Listings-4-7 conversion functions) read
                # meta tables the query text never names; sync those too
                tables = set(plan.tables) | self._sql_udf_tables()
            prefilters = {
                prefilter.table.lower(): prefilter for prefilter in plan.prefilters
            }
            pull_columns = {
                table.lower(): columns for table, columns in plan.pull_columns
            }
            for table in sorted(tables):
                self._sync_scratch_table(
                    scratch,
                    table,
                    dataset,
                    prefilter=prefilters.get(table.lower()),
                    columns=pull_columns.get(table.lower()),
                )
            return scratch.execute(plan.statement, parameters=parameters)

    def _sql_udf_tables(self) -> set[str]:
        """Tables referenced by SQL UDF bodies (registered *or* DDL-created)."""
        if self._udf_support_tables is None:
            from ..sql.parser import parse_query
            from ..sql.transform import referenced_table_names

            bodies = [
                payload
                for kind, _name, payload, _immutable in self._udf_log
                if kind == "sql"
            ]
            bodies.extend(
                statement.body
                for statement in self._ddl_log
                if isinstance(statement, ast.CreateFunction)
                and statement.language.upper() == "SQL"
            )
            support: set[str] = set()
            for body in bodies:
                support |= referenced_table_names(parse_query(body))
            self._udf_support_tables = support & self.catalog.relations
        return self._udf_support_tables

    def _sql_udf_statements(self) -> tuple[ast.Select, ...]:
        """Parsed SQL-UDF bodies, for the planner's projection pushdown.

        Columns a UDF body reads never appear in the query text, so the
        planner must treat them as referenced when deriving per-table pull
        columns for federated plans.
        """
        if self._udf_statement_cache is None:
            from ..sql.parser import parse_query

            bodies = [
                payload
                for kind, _name, payload, _immutable in self._udf_log
                if kind == "sql"
            ]
            bodies.extend(
                statement.body
                for statement in self._ddl_log
                if isinstance(statement, ast.CreateFunction)
                and statement.language.upper() == "SQL"
            )
            self._udf_statement_cache = tuple(
                query
                for query in (parse_query(body) for body in bodies)
                if isinstance(query, ast.Select)
            )
        return self._udf_statement_cache

    def _ensure_scratch(self) -> BackendConnection:
        """The lazily-created merge backend, with the cluster's DDL/UDFs replayed."""
        if self._scratch is None:
            self._scratch_backend = self._backend.create_shard_backend()
            self._scratch = self._scratch_backend.connect()
            for statement in self._ddl_log:
                self._scratch.execute(statement)
            for kind, name, payload, immutable in self._udf_log:
                if kind == "python":
                    self._scratch.register_python_function(
                        name, payload, immutable=immutable
                    )
                else:
                    self._scratch.register_sql_function(
                        name, payload, immutable=immutable
                    )
        return self._scratch

    def _sync_scratch_table(
        self,
        scratch: BackendConnection,
        table: str,
        dataset: Optional[Sequence[int]],
        prefilter: Optional[TablePrefilter] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> None:
        """Refresh one scratch table from the shards (``D'``-pruned when known).

        The costed planner may narrow the pull further: ``prefilter`` is a
        predicate every shard evaluates locally before shipping rows (sound
        because the federated statement re-applies its own predicates on the
        scratch copy), and ``columns`` is the column subset the statement
        reads — unpulled columns are dummy-filled, never observed.

        Skipped when the previous sync still covers this request
        (:meth:`_scratch_serves`); mutations drop the entry via
        :meth:`_mark_scratch_stale`.
        """
        key = table.lower()
        info = self.catalog.partitioned.get(key)
        want_dataset: Optional[frozenset[int]] = (
            None
            if info is None or dataset is None
            else frozenset(int(ttid) for ttid in dataset)
        )
        want_filter = prefilter.predicate.to_sql() if prefilter is not None else None
        schema = self._tables.get(key)
        pulled: Optional[tuple[str, ...]] = None
        if columns is not None and schema is not None and schema.column_defs:
            wanted = {column.lower() for column in columns}
            pulled = tuple(
                column for column in schema.columns if column.lower() in wanted
            )
            if len(pulled) == len(schema.columns):
                pulled = None  # nothing projected away: a full-width pull
        want_columns = frozenset(c.lower() for c in pulled) if pulled else None
        want = (want_dataset, want_filter, want_columns)
        have = self._scratch_state.get(key)
        if have is not None and self._scratch_serves(have, want):
            return
        scratch.execute(ast.Delete(table=table))
        items = (
            [ast.SelectItem(expr=ast.Star())]
            if pulled is None
            else [ast.SelectItem(expr=ast.Column(name=column)) for column in pulled]
        )
        pull: ast.Select = ast.Select(
            items=items,
            from_items=[ast.TableRef(name=table)],
        )
        conjuncts: list[ast.Expression] = []
        if info is None:
            if prefilter is not None:
                pull.where = prefilter.predicate
            rows = list(self._shards[0].query(pull).rows)
        else:
            sources = (
                range(len(self._shards))
                if dataset is None
                else self.placement.shards_for(dataset)
            )
            if dataset is not None:
                conjuncts.append(
                    ast.InList(
                        expr=ast.Column(name=info.ttid_column),
                        items=tuple(ast.Literal(int(ttid)) for ttid in dataset),
                    )
                )
            if prefilter is not None:
                conjuncts.append(prefilter.predicate)
            if conjuncts:
                pull.where = ast.and_(*conjuncts)
            rows = []
            for shard in sources:
                rows.extend(self._shards[shard].query(pull).rows)
        self.rows_pulled += len(rows)
        width = len(pulled) if pulled is not None else (
            len(schema.columns) if schema is not None else 0
        )
        self.cells_pulled += len(rows) * width
        if prefilter is not None:
            self.prefiltered_syncs += 1
        if pulled is not None:
            rows = self._widen_rows(schema, pulled, rows)
        if rows:
            scratch.insert_rows(table, rows)
        self._scratch_state[key] = want

    @staticmethod
    def _scratch_serves(
        have: tuple[
            Optional[frozenset[int]], Optional[str], Optional[frozenset[str]]
        ],
        want: tuple[
            Optional[frozenset[int]], Optional[str], Optional[frozenset[str]]
        ],
    ) -> bool:
        """Whether the scratch copy described by ``have`` covers ``want``.

        Each dimension serves when the held copy is unrestricted (``None``)
        or at least as wide: a full copy serves any ``D'``, an unfiltered
        copy any prefilter (the statement re-applies its own predicates),
        a full-width copy any column subset; a held column *superset* also
        serves.  A held prefilter serves only the identical one — implication
        between arbitrary predicates is not decided here.
        """
        have_dataset, have_filter, have_columns = have
        want_dataset, want_filter, want_columns = want
        if have_dataset is not None and have_dataset != want_dataset:
            return False
        if have_filter is not None and have_filter != want_filter:
            return False
        if have_columns is not None and (
            want_columns is None or not want_columns <= have_columns
        ):
            return False
        return True

    def _widen_rows(
        self,
        schema: _TableSchema,
        pulled: tuple[str, ...],
        rows: list[tuple],
    ) -> list[tuple]:
        """Expand projected pull rows back to full schema width.

        Projected-away columns get type-appropriate placeholders — the
        federated statement never reads them, they only satisfy the scratch
        table's arity and NOT NULL checks.
        """
        pulled_set = {column.lower() for column in pulled}
        template: list[Any] = []
        slots: list[int] = []
        for index, column in enumerate(schema.column_defs):
            if column.name.lower() in pulled_set:
                template.append(None)
                slots.append(index)
            else:
                template.append(schema.placeholder(column))
        widened = []
        for row in rows:
            full = list(template)
            for slot, value in zip(slots, row):
                full[slot] = value
            widened.append(tuple(full))
        return widened

    def _mark_scratch_stale(self, table: str) -> None:
        """Force the next federated query to re-pull ``table``."""
        with self._lock:
            self._scratch_state.pop(table.lower(), None)

    # -- UDF registration ------------------------------------------------------

    def register_python_function(
        self, name: str, fn: Callable[..., Any], immutable: bool = False
    ) -> None:
        """Register a Python UDF on every shard (and the scratch backend).

        The callable also joins the coordinator's merge-function registry, so
        post-aggregation calls (the optimizer's inlined conversion rates) can
        be evaluated after gathering without another backend round-trip.
        """
        with self._lock:
            self._udf_log.append(("python", name, fn, immutable))
            self._merge_functions[name.lower()] = fn
            for shard in self._shards:
                shard.register_python_function(name, fn, immutable=immutable)
            if self._scratch is not None:
                self._scratch.register_python_function(name, fn, immutable=immutable)

    def register_sql_function(
        self, name: str, body: str, immutable: bool = False
    ) -> None:
        """Register a SQL-bodied UDF on every shard (and the scratch backend)."""
        with self._lock:
            self._udf_log.append(("sql", name, body, immutable))
            # recompute the federated sync set / pushdown inputs lazily
            self._udf_support_tables = None
            self._udf_statement_cache = None
            for shard in self._shards:
                shard.register_sql_function(name, body, immutable=immutable)
            if self._scratch is not None:
                self._scratch.register_sql_function(name, body, immutable=immutable)

    # -- bulk load / metadata --------------------------------------------------

    def insert_rows(self, table_name: str, rows: list[tuple]) -> int:
        """Bulk-load rows: routed by ttid for partitioned tables, else replicated."""
        self._mark_scratch_stale(table_name)
        info = self.catalog.partitioned.get(table_name.lower())
        if info is None:
            for shard in self._shards:
                shard.insert_rows(table_name, rows)
            return len(rows)
        schema = self._tables.get(table_name.lower())
        if schema is None:
            raise ClusterError(f"cannot bulk-load unknown table {table_name!r}")
        target = info.ttid_column.lower()
        ttid_index = next(
            index
            for index, column in enumerate(schema.columns)
            if column.lower() == target
        )
        routed: dict[int, list[tuple]] = {}
        for row in rows:
            routed.setdefault(
                self.placement.shard_of(int(row[ttid_index])), []
            ).append(row)
        for shard, shard_rows in sorted(routed.items()):
            self._shards[shard].insert_rows(table_name, shard_rows)
        return len(rows)

    def table_rowcount(self, table_name: str) -> int:
        """Logical row count: summed for partitioned tables, one replica else."""
        if self.catalog.is_partitioned(table_name):
            return sum(shard.table_rowcount(table_name) for shard in self._shards)
        return self._shards[0].table_rowcount(table_name)

    def check_integrity(self) -> list[str]:
        """Integrity violations of every shard, prefixed with the shard id."""
        violations: list[str] = []
        for index, shard in enumerate(self._shards):
            violations.extend(
                f"shard {index}: {message}" for message in shard.check_integrity()
            )
        return violations

    # -- statistics / caches ---------------------------------------------------

    def _replicated_relations(self) -> frozenset[str]:
        """Relations replicated on every shard (everything not partitioned)."""
        return frozenset(
            name
            for name in self.catalog.relations
            if name not in self.catalog.partitioned
        )

    def collect_statistics(self) -> StatisticsCatalog:
        """Freshly scan every shard and merge into cluster-wide statistics.

        Partitioned tables merge additively across shards (each row lives on
        exactly one shard); replicated tables take one shard's statistics
        verbatim.
        """
        return merge_catalogs(
            [shard.collect_statistics() for shard in self._shards],
            replicated=self._replicated_relations(),
        )

    def statistics(self) -> StatisticsCatalog:
        """Cluster-wide statistics from the shards' lazily refreshed catalogs."""
        return merge_catalogs(
            [shard.statistics() for shard in self._shards],
            replicated=self._replicated_relations(),
        )

    def set_cost(self, enabled: bool) -> None:
        """Switch cost-based planning on or off across the whole cluster.

        Updates the cluster planner's config and forwards to every shard (and
        the scratch backend) that supports the switch; memoized cluster plans
        are keyed on the flag, so the change takes effect on the next query.
        """
        with self._lock:
            self.planner.cost = CostConfig(
                enabled=enabled,
                prefilter_max_selectivity=self.planner.cost.prefilter_max_selectivity,
            )
            connections = list(self._shards)
            if self._scratch is not None:
                connections.append(self._scratch)
            for connection in connections:
                set_cost = getattr(connection, "set_cost", None)
                if set_cost is not None:
                    set_cost(enabled)

    def reset_pull_counters(self) -> None:
        """Zero the federated pull-volume counters (rows/cells/prefilters)."""
        with self._lock:
            self.rows_pulled = 0
            self.cells_pulled = 0
            self.prefiltered_syncs = 0

    def aggregate_stats(self) -> ExecutionStats:
        """Sum of the shard (and scratch) counters, as a plain snapshot."""
        total = ExecutionStats()
        connections = list(self._shards)
        if self._scratch is not None:
            connections.append(self._scratch)
        for connection in connections:
            stats = connection.stats
            total.add(
                udf_calls=stats.udf_calls,
                udf_executions=stats.udf_executions,
                udf_cache_hits=stats.udf_cache_hits,
                subquery_runs=stats.subquery_runs,
                statements=stats.statements,
            )
        return total

    def reset_stats(self) -> None:
        """Reset the coordinator's, the planner's and every shard's counters."""
        self.stats.reset()
        with self._lock:
            self.plan_reuses = 0
        self.reset_pull_counters()
        self.planner.reset_stats()
        for shard in self._shards:
            shard.reset_stats()
        if self._scratch is not None:
            self._scratch.reset_stats()

    def clear_function_caches(self) -> None:
        """Drop memoized UDF results on every shard (and the scratch backend)."""
        for shard in self._shards:
            shard.clear_function_caches()
        if self._scratch is not None:
            self._scratch.clear_function_caches()

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Shut down the coordinator pool (backends are closed by the factory)."""
        self.coordinator.close()

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"ShardedConnection(shards={len(self._shards)}, "
            f"placement={self.placement!r}, dialect={self.dialect.name!r})"
        )


class ShardedBackend(Backend):
    """A cluster of N identical backends presented as one backend.

    ``shards`` picks the shard count (default 2), ``backend_factory`` builds
    each shard (default: a fresh in-memory engine per shard with ``profile``),
    and ``placement`` assigns tenants to shards
    (:class:`~repro.cluster.placement.HashPlacement` by default).  The
    factory is also used for the federated scratch backend, so every member
    of the cluster speaks the same dialect.

    ``scatter_gather=False`` disables the decomposed strategies and forces
    every multi-shard query through the (always-correct) federated path —
    the escape hatch for workloads that join tenant-specific rows of
    different tenants on non-key attributes, where the planner's co-location
    assumption does not hold.
    """

    name = "sharded"

    def __init__(
        self,
        shards: Optional[int] = None,
        backend_factory: Optional[Callable[[], Backend]] = None,
        placement: Optional[PlacementPolicy] = None,
        profile: str = "postgres",
        scatter_gather: bool = True,
    ) -> None:
        if placement is None:
            placement = HashPlacement(shards if shards is not None else 2)
        elif shards is not None and shards != placement.shard_count:
            raise ClusterError(
                f"shards={shards} contradicts the placement policy's "
                f"shard_count={placement.shard_count}"
            )
        self.placement = placement
        self.scatter_gather = scatter_gather
        if backend_factory is None:
            from .engine import EngineBackend

            backend_factory = lambda: EngineBackend(profile=profile)  # noqa: E731
        self._backend_factory = backend_factory
        self.shards: list[Backend] = [
            backend_factory() for _ in range(placement.shard_count)
        ]
        self._scratch_backends: list[Backend] = []
        self.dialect = self.shards[0].dialect
        self._connection = ShardedConnection(self)

    def create_shard_backend(self) -> Backend:
        """Build one more backend of the cluster's family (scratch storage)."""
        backend = self._backend_factory()
        self._scratch_backends.append(backend)
        return backend

    def connect(self) -> ShardedConnection:
        """The cluster's single logical connection."""
        return self._connection

    def close(self) -> None:
        """Close the coordinator, every shard and any scratch backends."""
        self._connection.close()
        for backend in self.shards + self._scratch_backends:
            backend.close()

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"ShardedBackend(shards={len(self.shards)}, "
            f"family={self.shards[0].name!r}, placement={self.placement!r})"
        )
