"""Execution backends: pluggable DBMSes below the MTBase middleware.

The middleware rewrites MTSQL into plain SQL; a *backend* executes that SQL.
This package defines the protocol (:class:`Backend`,
:class:`BackendConnection`) and ships two implementations:

* :class:`EngineBackend` — the pure-Python in-memory engine with the paper's
  "postgres" / "system_c" UDF-caching profiles,
* :class:`SQLiteBackend` — a real DBMS (stdlib :mod:`sqlite3`) with the
  conversion functions registered as native UDFs.

Use :func:`create_backend` to build one by name (the spelling the
``REPRO_BENCH_BACKEND`` environment variable uses).
"""

from __future__ import annotations

from typing import Union

from ..errors import BackendError
from .base import (
    Backend,
    BackendConnection,
    normalize_row,
    normalize_value,
    normalized_rows,
)
from .engine import EngineBackend, EngineConnection
from .sqlite import SQLiteBackend, SQLiteConnection

BACKEND_NAMES = ("engine", "sqlite")


def create_backend(name: str, profile: str = "postgres") -> Backend:
    """Instantiate a backend by name (``"engine"`` or ``"sqlite"``)."""
    normalized = name.strip().lower()
    if normalized == "engine":
        return EngineBackend(profile=profile)
    if normalized == "sqlite":
        return SQLiteBackend(profile=profile)
    raise BackendError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


def as_backend_connection(
    backend: Union[Backend, BackendConnection, str], profile: str = "postgres"
) -> BackendConnection:
    """Normalize a backend spec (name, factory or connection) to a connection."""
    if isinstance(backend, str):
        backend = create_backend(backend, profile=profile)
    if isinstance(backend, Backend):
        return backend.connect()
    if isinstance(backend, BackendConnection):
        return backend
    raise BackendError(
        f"expected a backend name, Backend or BackendConnection, got "
        f"{type(backend).__name__}"
    )


__all__ = [
    "Backend",
    "BackendConnection",
    "BACKEND_NAMES",
    "EngineBackend",
    "EngineConnection",
    "SQLiteBackend",
    "SQLiteConnection",
    "as_backend_connection",
    "create_backend",
    "normalize_row",
    "normalize_value",
    "normalized_rows",
]
