"""Execution backends: pluggable DBMSes below the MTBase middleware.

The middleware rewrites MTSQL into plain SQL; a *backend* executes that SQL.
This package defines the protocol (:class:`Backend`,
:class:`BackendConnection`) and ships two implementations:

* :class:`EngineBackend` — the pure-Python in-memory engine with the paper's
  "postgres" / "system_c" UDF-caching profiles,
* :class:`SQLiteBackend` — a real DBMS (stdlib :mod:`sqlite3`) with the
  conversion functions registered as native UDFs,
* :class:`ShardedBackend` — a tenant-partitioned *cluster* of either family,
  executing queries by scatter-gather (see :mod:`repro.cluster`).

Use :func:`create_backend` to build one by name (the spelling the
``REPRO_BENCH_BACKEND`` environment variable uses); sharded clusters spell
the shard count and family in the name, e.g. ``"sharded:4"`` or
``"sharded:2:sqlite"``.
"""

from __future__ import annotations

from typing import Union

from ..errors import BackendError
from .base import (
    Backend,
    BackendConnection,
    normalize_row,
    normalize_value,
    normalized_rows,
)
from .engine import EngineBackend, EngineConnection
from .sharded import ShardedBackend, ShardedConnection
from .sqlite import SQLiteBackend, SQLiteConnection

BACKEND_NAMES = ("engine", "sqlite", "sharded")


def create_backend(name: str, profile: str = "postgres") -> Backend:
    """Instantiate a backend by name.

    ``"engine"`` and ``"sqlite"`` build a single backend; ``"sharded"``
    builds a cluster — optionally with shard count and shard family, e.g.
    ``"sharded:4"`` (four engine shards) or ``"sharded:2:sqlite"``.
    """
    normalized = name.strip().lower()
    if normalized == "engine":
        return EngineBackend(profile=profile)
    if normalized == "sqlite":
        return SQLiteBackend(profile=profile)
    if normalized == "sharded" or normalized.startswith("sharded:"):
        return _create_sharded(normalized, profile)
    raise BackendError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )


def _create_sharded(spec: str, profile: str) -> ShardedBackend:
    """Parse a ``sharded[:N[:family]]`` spec into a :class:`ShardedBackend`."""
    parts = spec.split(":")
    shards = 2
    family = "engine"
    if len(parts) > 1 and parts[1]:
        try:
            shards = int(parts[1])
        except ValueError as exc:
            raise BackendError(
                f"bad shard count in backend spec {spec!r}; expected "
                f"sharded[:N[:family]]"
            ) from exc
    if len(parts) > 2 and parts[2]:
        family = parts[2]
        if family == "sharded" or family.startswith("sharded"):
            raise BackendError("sharded clusters cannot nest")
    return ShardedBackend(
        shards=shards,
        backend_factory=lambda: create_backend(family, profile=profile),
        profile=profile,
    )


def as_backend_connection(
    backend: Union[Backend, BackendConnection, str], profile: str = "postgres"
) -> BackendConnection:
    """Normalize a backend spec (name, factory or connection) to a connection."""
    if isinstance(backend, str):
        backend = create_backend(backend, profile=profile)
    if isinstance(backend, Backend):
        return backend.connect()
    if isinstance(backend, BackendConnection):
        return backend
    raise BackendError(
        f"expected a backend name, Backend or BackendConnection, got "
        f"{type(backend).__name__}"
    )


__all__ = [
    "Backend",
    "BackendConnection",
    "BACKEND_NAMES",
    "EngineBackend",
    "EngineConnection",
    "SQLiteBackend",
    "SQLiteConnection",
    "ShardedBackend",
    "ShardedConnection",
    "as_backend_connection",
    "create_backend",
    "normalize_row",
    "normalize_value",
    "normalized_rows",
]
