"""The execution-backend protocol the MTBase middleware targets.

The paper's central claim is that MTBase is a *middleware*: cross-tenant
MTSQL is rewritten to plain SQL and executed unchanged on any off-the-shelf
DBMS.  This module states the contract an execution backend must satisfy so
that the layers above (:mod:`repro.core`, :mod:`repro.gateway`,
:mod:`repro.bench`) never import a concrete engine:

* :class:`Backend` — the factory/lifecycle object: knows its
  :class:`~repro.sql.dialect.Dialect` and hands out connections,
* :class:`BackendConnection` — the execution surface: DDL, parameterized
  DML/query execution, UDF registration, bulk load and the statistics
  counters the benchmark harness reads.

Two implementations ship with the reproduction:
:class:`~repro.backends.engine.EngineBackend` (the in-memory Python engine,
standing in for PostgreSQL / System C) and
:class:`~repro.backends.sqlite.SQLiteBackend` (a real DBMS via the standard
library's :mod:`sqlite3`).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence, Union

from ..errors import BackendError
from ..result import ExecuteResult, ExecutionStats, QueryResult, RowStream
from ..sql import ast
from ..sql.dialect import Dialect
from ..sql.parser import parse_statements
from ..sql.types import Date

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile.artifact import CompiledQuery
    from ..compile.stats import StatisticsCatalog

Statement = Union[str, ast.Statement]


class BackendConnection(abc.ABC):
    """One session against an execution backend.

    Connections are long-lived: the middleware opens one and funnels every
    rewritten statement through it.  Implementations must be safe to share
    between the gateway's worker threads.
    """

    #: backend family name, e.g. ``"engine"`` or ``"sqlite"``
    name: str = "backend"
    #: the SQL dialect statements are rendered in before execution
    dialect: Dialect
    #: statement / UDF counters (same shape for every backend)
    stats: ExecutionStats

    # -- statement execution -------------------------------------------------

    @abc.abstractmethod
    def execute(
        self, statement: Statement, parameters: Optional[Sequence[Any]] = None
    ) -> ExecuteResult:
        """Execute one statement (SQL text or an already-parsed AST node).

        ``parameters`` bind the ``$1`` ... ``$n`` placeholders of a
        parameterized statement; positional, 1-based like the SQL-function
        parameter convention.
        """

    def execute_script(self, sql: str) -> list[ExecuteResult]:
        """Execute a ``;``-separated script, returning one result per statement."""
        return [self.execute(statement) for statement in parse_statements(sql)]

    def execute_scoped(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> ExecuteResult:
        """Execute a statement known to touch only the tenants in ``dataset``.

        ``dataset`` is the resolved, pruned data set ``D'`` of the rewritten
        statement — pure routing metadata, never a filter (the statement
        already embeds its ttid predicates).  Single-database backends ignore
        it; a sharded backend uses it to prune the shard fan-out (the
        single-shard fast path).  ``None`` means "unknown", not "empty".

        ``compiled`` is the statement's :class:`~repro.compile.CompiledQuery`
        artifact when it came through the middleware pipeline.  Backends that
        plan (the sharded cluster) consume its shardability analysis instead
        of re-walking the AST and memoize derived plans in the artifact's
        ``attachments``; single-database backends ignore it.
        """
        return self.execute(statement, parameters=parameters)

    def query(
        self, statement: Statement, parameters: Optional[Sequence[Any]] = None
    ) -> QueryResult:
        """Execute a SELECT and return its :class:`QueryResult`."""
        result = self.execute(statement, parameters=parameters)
        if not isinstance(result, QueryResult):
            raise BackendError("query() expects a SELECT statement")
        return result

    def execute_stream(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> RowStream:
        """Execute a SELECT, returning rows as an incremental
        :class:`~repro.result.RowStream`.

        The base implementation materializes via :meth:`execute_scoped` and
        replays the row list — always correct, never incremental.  Backends
        that can produce rows before the full result exists override it: the
        engine streams its lazy pipeline, SQLite fetches from an open DBMS
        cursor, the sharded cluster delegates its single-shard fast path to
        the owning shard (merge and federated paths materialize).  Arguments
        mean the same as for :meth:`execute_scoped`.
        """
        result = self.execute_scoped(
            statement, dataset=dataset, parameters=parameters, compiled=compiled
        )
        if not isinstance(result, QueryResult):
            raise BackendError("execute_stream() expects a SELECT statement")
        return RowStream(columns=result.columns, rows=result.rows)

    # -- UDF registration ----------------------------------------------------

    @abc.abstractmethod
    def register_python_function(
        self, name: str, fn: Callable[..., Any], immutable: bool = False
    ) -> None:
        """Register a Python-backed scalar UDF."""

    @abc.abstractmethod
    def register_sql_function(
        self, name: str, body: str, immutable: bool = False
    ) -> None:
        """Register a SQL-bodied scalar UDF (``$1`` ... ``$n`` parameters)."""

    # -- bulk load / metadata ------------------------------------------------

    @abc.abstractmethod
    def insert_rows(self, table_name: str, rows: list[tuple]) -> int:
        """Bulk-load rows (already in schema order) into a table."""

    @abc.abstractmethod
    def table_rowcount(self, table_name: str) -> int:
        """Number of rows currently stored in ``table_name``."""

    @abc.abstractmethod
    def check_integrity(self) -> list[str]:
        """Validate primary-key uniqueness and foreign-key references.

        Returns a list of human-readable violation messages (empty = clean).
        """

    def register_partitioned_table(
        self,
        table_name: str,
        ttid_column: str,
        local_key_columns: Sequence[str] = (),
    ) -> None:
        """Declare that ``table_name`` is horizontally partitioned by tenant.

        The MTBase middleware calls this for every tenant-specific table it
        creates, naming the invisible ttid column and the table's
        tenant-specific (``SPECIFIC``) attributes — the columns whose values
        never span tenants.  Single-database backends ignore the hint; a
        sharded backend uses it to route loads and to plan scatter-gather
        queries.
        """

    # -- statistics / caches -------------------------------------------------

    def collect_statistics(self) -> "StatisticsCatalog":
        """Scan every base table into a fresh
        :class:`~repro.compile.stats.StatisticsCatalog` and cache it.

        The middleware calls this once after bulk load; afterwards
        :meth:`statistics` serves the cached catalog, refreshing individual
        tables lazily once enough DML has accumulated.  The base
        implementation collects nothing — backends without a costed planner
        may stay statistics-free.
        """
        from ..compile.stats import StatisticsCatalog

        return StatisticsCatalog()

    def statistics(self) -> "StatisticsCatalog":
        """The current (possibly lazily refreshed) statistics catalog."""
        from ..compile.stats import StatisticsCatalog

        return StatisticsCatalog()

    def reset_stats(self) -> None:
        """Zero the statement/UDF counters (between benchmark runs)."""
        self.stats.reset()

    def clear_function_caches(self) -> None:
        """Drop memoized immutable-UDF results (a no-op if none are kept)."""

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release backend resources; the connection is unusable afterwards."""

    def __enter__(self) -> "BackendConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"{type(self).__name__}(dialect={self.dialect.name!r})"


class Backend(abc.ABC):
    """An execution backend: a target DBMS plus the dialect it speaks."""

    name: str = "backend"
    dialect: Dialect

    @abc.abstractmethod
    def connect(self) -> BackendConnection:
        """The connection to this backend's database.

        Both shipped backends serve one shared database per :class:`Backend`
        instance, so repeated calls return the same connection object.
        """

    def close(self) -> None:
        """Dispose of the backend (and any database it owns)."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Cross-backend result normalization
# ---------------------------------------------------------------------------
#
# Different backends return equivalent values in different physical shapes:
# the engine yields Date objects and exact Python floats, SQLite yields ISO
# strings and floats that went through REAL round-trips and may differ in the
# last couple of bits after long aggregations.  Normalizing to 12 significant
# digits keeps genuinely different values apart while making both backends'
# MT-H answers comparable row-set-wise.

_FLOAT_SIGNIFICANT_DIGITS = 12


def normalize_value(value: Any, significant_digits: int = _FLOAT_SIGNIFICANT_DIGITS) -> Any:
    """One value in cross-backend-comparable shape (dates → ISO text,
    floats → ``significant_digits`` significant digits, bools → ints)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float):
        if value == 0:
            return 0.0
        return float(f"{value:.{significant_digits}g}")
    if isinstance(value, Date):
        return str(value)
    return value


def normalize_row(row: Iterable[Any], significant_digits: int = _FLOAT_SIGNIFICANT_DIGITS) -> tuple:
    """One row tuple with every value passed through :func:`normalize_value`."""
    return tuple(normalize_value(value, significant_digits) for value in row)


def normalized_rows(
    result: Union[QueryResult, list[tuple]],
    significant_digits: int = _FLOAT_SIGNIFICANT_DIGITS,
) -> list[tuple]:
    """Order-normalized, value-normalized rows for cross-backend comparison."""
    rows = result.rows if isinstance(result, QueryResult) else result
    normalized = [normalize_row(row, significant_digits) for row in rows]
    return sorted(normalized, key=_row_sort_key)


def _row_sort_key(row: tuple) -> tuple:
    return tuple((value is None, str(type(value)), str(value)) for value in row)
