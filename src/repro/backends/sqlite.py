"""A real execution backend: SQLite through the standard library.

:class:`SQLiteBackend` makes the paper's middleware claim reproducible on an
actual DBMS: the rewritten SQL the middleware emits is rendered in the
:data:`~repro.sql.dialect.SQLITE_DIALECT` and executed by :mod:`sqlite3`,
with the MT-specific conversion functions registered as native UDFs via
``sqlite3.create_function`` (the counterpart of the paper deploying Listings
4-7 on PostgreSQL / System C).

Implementation notes:

* the database lives in a **temporary file** (deleted on :meth:`close`), so
  a *side connection* can serve SQL-bodied UDFs: a call such as
  ``currencyToUniversal(x, t)`` executes its meta-table look-up body on the
  side connection while the main connection is mid-query — re-entrant use of
  one connection is not allowed by :mod:`sqlite3`, and shared-cache
  in-memory databases deadlock on the table locks;
* dates are stored as ISO-8601 ``TEXT`` (calendar order == string order) and
  converted back to :class:`~repro.sql.types.Date` in query results, so the
  layers above see the same value shapes as with the engine backend;
* UDF result memoization follows the back-end *profile* exactly like the
  engine: the PostgreSQL-like profile caches immutable functions, the
  System-C-like profile never does (the paper's appendix asymmetry);
* ``PRAGMA case_sensitive_like`` is switched on — TPC-H ``LIKE`` predicates
  are case-sensitive on PostgreSQL and the engine.
"""

from __future__ import annotations

import os
import re
import sqlite3
import tempfile
import threading
import weakref
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence, Union

from ..compile.stats import RefreshPolicy, StatisticsCatalog, collect_table_stats
from ..engine.database import PROFILES, BackendProfile
from ..errors import BackendError, ExecutionError
from ..result import (
    ExecuteResult,
    ExecutionStats,
    QueryResult,
    RowStream,
    StatementResult,
)
from ..sql import ast
from ..sql.dialect import SQLITE_DIALECT
from ..sql.parser import parse_query, parse_statement
from ..sql.printer import to_sql
from ..sql.types import Date
from .base import Backend, BackendConnection, Statement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..compile.artifact import CompiledQuery

_ISO_DATE = re.compile(r"\d{4}-\d{2}-\d{2}\Z")

#: rows pulled per round-trip on the streaming path
_STREAM_BATCH_SIZE = 256


class _RegisteredFunction:
    """A UDF wrapper adding profile-aware memoization and statistics."""

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        immutable: bool,
        cache_results: bool,
        stats: ExecutionStats,
    ) -> None:
        self.name = name
        self._fn = fn
        self.immutable = immutable
        self._cache_results = cache_results and immutable
        self._cache: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self._stats = stats

    def __call__(self, *args: Any) -> Any:
        if self._cache_results:
            key = args
            with self._lock:
                if key in self._cache:
                    self._stats.add_udf_call(executed=0)
                    return self._cache[key]
            value = self._fn(*args)
            with self._lock:
                self._cache[key] = value
            self._stats.add_udf_call(executed=1)
            return value
        self._stats.add_udf_call(executed=1)
        return self._fn(*args)

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()


class SQLiteConnection(BackendConnection):
    """The (thread-safe, shared) connection to one SQLite database.

    **Known asymmetry** — SQLite stores dates as ISO ``TEXT``, so query
    results cannot distinguish a ``DATE`` column from a ``VARCHAR`` that
    happens to hold ``YYYY-MM-DD`` text.  With :attr:`convert_iso_dates` on
    (the default, matching the engine backend's value shapes for the MT-H
    schema) any such string converts to :class:`~repro.sql.types.Date`;
    schemas whose *string* data can look like dates should switch it off and
    handle dates as ISO text.
    """

    name = "sqlite"
    dialect = SQLITE_DIALECT
    #: convert ISO-8601-shaped result strings back to Date values
    convert_iso_dates = True

    def __init__(self, path: str, profile: BackendProfile, owns_file: bool) -> None:
        self._path = path
        self.profile = profile
        self._owns_file = owns_file
        self.stats = ExecutionStats()
        self._lock = threading.RLock()
        self._closed = False
        self._main = sqlite3.connect(path, check_same_thread=False, isolation_level=None)
        # serves SQL-bodied UDF look-ups while the main connection is busy
        self._side = sqlite3.connect(path, check_same_thread=False, isolation_level=None)
        self._side_lock = threading.RLock()
        for connection in (self._main, self._side):
            connection.execute("PRAGMA case_sensitive_like = ON")
            connection.execute("PRAGMA synchronous = OFF")
        #: parsed CREATE TABLE statements, for bulk load and integrity checks
        self._tables: dict[str, ast.CreateTable] = {}
        self._functions: dict[str, _RegisteredFunction] = {}
        # planner statistics: collected on demand, refreshed per table once
        # enough DML has accumulated
        self._statistics = StatisticsCatalog()
        self._stat_mutations: dict[str, int] = {}
        self._ttid_hints: dict[str, str] = {}
        self._refresh_policy = RefreshPolicy()
        # temp-file databases must not outlive the connection: clean up when
        # the owner forgets to close() (GC or interpreter exit)
        self._finalizer = weakref.finalize(
            self, _dispose, self._main, self._side, path, owns_file
        )
        self._register_builtin(
            "CHAR_LENGTH", 1, lambda value: None if value is None else len(str(value))
        )
        self._register_builtin("CONCAT", -1, _fn_concat)

    # -- statement execution -------------------------------------------------

    def execute(
        self, statement: Statement, parameters: Optional[Sequence[Any]] = None
    ) -> ExecuteResult:
        """Render the statement in the SQLite dialect and execute it."""
        if isinstance(statement, str):
            statement = parse_statement(statement)
        parameters = tuple(_to_sqlite(value) for value in (parameters or ()))
        # render outside the lock: SQL generation is pure Python work and
        # must not extend the window in which other sessions are blocked
        if isinstance(statement, ast.Select):
            return self._execute_select(statement, parameters)
        if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            kind = type(statement).__name__.upper()
            sql = to_sql(statement, self.dialect)
            with self._lock:
                self._ensure_open()
                self.stats.add(statements=1)
                try:
                    cursor = self._main.execute(sql, parameters)
                except sqlite3.Error as exc:
                    raise ExecutionError(f"sqlite {kind} failed: {exc}") from exc
                count = max(cursor.rowcount, 0)
                self._note_mutations(statement.table, count)
                return StatementResult(kind, rowcount=count)
        with self._lock:
            self._ensure_open()
            self.stats.add(statements=1)
            if isinstance(statement, ast.CreateTable):
                return self._execute_create_table(statement)
            if isinstance(statement, ast.CreateFunction):
                # re-entrant lock: registration re-acquires it harmlessly
                self.register_sql_function(
                    statement.name, statement.body, immutable=statement.immutable
                )
                return StatementResult("CREATE FUNCTION")
            if isinstance(statement, ast.CreateView):
                self._main.execute(to_sql(statement, self.dialect))
                return StatementResult("CREATE VIEW")
            if isinstance(statement, ast.DropTable):
                self._main.execute(to_sql(statement, self.dialect))
                self._tables.pop(statement.name.lower(), None)
                self._statistics.drop(statement.name)
                self._stat_mutations.pop(statement.name.lower(), None)
                return StatementResult("DROP TABLE")
            if isinstance(statement, ast.DropView):
                self._main.execute(to_sql(statement, self.dialect))
                return StatementResult("DROP VIEW")
        raise BackendError(
            f"statement type {type(statement).__name__} is not executable by the "
            f"sqlite backend"
        )

    def _execute_select(
        self, statement: ast.Select, parameters: tuple
    ) -> QueryResult:
        sql = to_sql(statement, self.dialect)  # rendered outside the lock
        with self._lock:
            self._ensure_open()
            self.stats.add(statements=1)
            try:
                cursor = self._main.execute(sql, parameters)
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"sqlite SELECT failed: {exc}\n  sql: {sql}"
                ) from exc
            columns = [description[0] for description in cursor.description or ()]
            raw_rows = cursor.fetchall()
        # per-cell value conversion happens outside the lock as well
        if self.convert_iso_dates:
            rows = [tuple(_from_sqlite(value) for value in row) for row in raw_rows]
        else:
            rows = [tuple(row) for row in raw_rows]
        return QueryResult(columns=columns, rows=rows)

    def execute_stream(
        self,
        statement: Statement,
        dataset: Optional[Sequence[int]] = None,
        parameters: Optional[Sequence[Any]] = None,
        compiled: Optional["CompiledQuery"] = None,
    ) -> RowStream:
        """Stream a SELECT from an open :mod:`sqlite3` cursor.

        Rows are pulled from the DBMS in ``fetchmany`` batches as the
        consumer advances, so the first rows arrive without materializing the
        result set on either side.  Closing the returned stream closes the
        underlying cursor.  Parameters bind natively (the statement renders
        its placeholders as ``?NNN``).
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if not isinstance(statement, ast.Select):
            raise BackendError("execute_stream() expects a SELECT statement")
        bound = tuple(_to_sqlite(value) for value in (parameters or ()))
        sql = to_sql(statement, self.dialect)
        with self._lock:
            self._ensure_open()
            self.stats.add(statements=1)
            try:
                cursor = self._main.execute(sql, bound)
            except sqlite3.Error as exc:
                raise ExecutionError(
                    f"sqlite SELECT failed: {exc}\n  sql: {sql}"
                ) from exc
            columns = [description[0] for description in cursor.description or ()]
        convert = self.convert_iso_dates

        def produce():
            while True:
                with self._lock:
                    self._ensure_open()
                    batch = cursor.fetchmany(_STREAM_BATCH_SIZE)
                if not batch:
                    return
                for raw in batch:
                    if convert:
                        yield tuple(_from_sqlite(value) for value in raw)
                    else:
                        yield tuple(raw)

        return RowStream(columns=columns, rows=produce(), on_close=cursor.close)

    def _execute_create_table(self, statement: ast.CreateTable) -> StatementResult:
        # The physical statement must be MT-annotation-free plain SQL.  PK and
        # UNIQUE constraints become plain (non-unique) indexes: the engine
        # backend reports key violations through check_integrity() instead of
        # rejecting inserts, and both backends must accept the same loads.
        key_constraints = [
            constraint
            for constraint in statement.constraints
            if constraint.kind
            in (ast.ConstraintKind.PRIMARY_KEY, ast.ConstraintKind.UNIQUE)
        ]
        physical = ast.CreateTable(
            name=statement.name,
            columns=[
                ast.ColumnDef(
                    name=column.name,
                    type_name=column.type_name,
                    not_null=column.not_null,
                    default=column.default,
                )
                for column in statement.columns
            ],
            constraints=[
                constraint
                for constraint in statement.constraints
                if constraint not in key_constraints
            ],
            generality=None,
        )
        quote = self.dialect.quote_identifier
        try:
            self._main.execute(to_sql(physical, self.dialect))
            for position, constraint in enumerate(key_constraints):
                index_name = f"idx_{statement.name}_key{position}"
                columns = ", ".join(quote(column) for column in constraint.columns)
                self._main.execute(
                    f"CREATE INDEX {quote(index_name)} "
                    f"ON {quote(statement.name)} ({columns})"
                )
        except sqlite3.Error as exc:
            raise ExecutionError(f"sqlite CREATE TABLE failed: {exc}") from exc
        # record the original constraints so check_integrity() sees the keys
        self._tables[statement.name.lower()] = ast.CreateTable(
            name=statement.name,
            columns=physical.columns,
            constraints=statement.constraints,
            generality=None,
        )
        return StatementResult("CREATE TABLE")

    # -- UDF registration ----------------------------------------------------

    def register_python_function(
        self, name: str, fn: Callable[..., Any], immutable: bool = False
    ) -> None:
        """Register a Python scalar UDF via ``sqlite3.create_function``."""
        wrapper = _RegisteredFunction(
            name,
            fn,
            immutable=immutable,
            cache_results=self.profile.cache_immutable_functions,
            stats=self.stats,
        )
        with self._lock:
            self._ensure_open()
            self._functions[name.lower()] = wrapper
            for connection in (self._main, self._side):
                connection.create_function(name, -1, wrapper, deterministic=immutable)

    def register_sql_function(
        self, name: str, body: str, immutable: bool = False
    ) -> None:
        """Deploy a SQL-bodied UDF (the paper's Listings 4-7 style).

        The body (a parameterized look-up query) runs on the side connection
        each time the main connection calls the function.
        """
        body_sql = to_sql(parse_query(body), self.dialect)

        def call_body(*args: Any) -> Any:
            bound = tuple(_to_sqlite(value) for value in args)
            with self._side_lock:
                row = self._side.execute(body_sql, bound).fetchone()
            return row[0] if row else None

        self.register_python_function(name, call_body, immutable=immutable)

    def _register_builtin(self, name: str, arity: int, fn: Callable[..., Any]) -> None:
        # engine built-ins the rewrite relies on but SQLite (< 3.44) lacks
        for connection in (self._main, self._side):
            connection.create_function(name, arity, fn, deterministic=True)

    # -- bulk load / metadata ------------------------------------------------

    def insert_rows(self, table_name: str, rows: list[tuple]) -> int:
        """Bulk-load rows with one parameterized ``executemany``."""
        if not rows:
            return 0
        with self._lock:
            self._ensure_open()
            width = len(rows[0])
            placeholders = ", ".join(
                self.dialect.placeholder(index) for index in range(1, width + 1)
            )
            sql = (
                f"INSERT INTO {self.dialect.quote_identifier(table_name)} "
                f"VALUES ({placeholders})"
            )
            converted = [tuple(_to_sqlite(value) for value in row) for row in rows]
            try:
                self._main.execute("BEGIN")
                self._main.executemany(sql, converted)
                self._main.execute("COMMIT")
            except sqlite3.Error as exc:
                self._main.execute("ROLLBACK")
                raise ExecutionError(
                    f"sqlite bulk load into {table_name!r} failed: {exc}"
                ) from exc
            self._note_mutations(table_name, len(rows))
            return len(rows)

    def table_rowcount(self, table_name: str) -> int:
        """Current row count of ``table_name`` (a ``COUNT(*)`` round-trip)."""
        with self._lock:
            self._ensure_open()
            quoted = self.dialect.quote_identifier(table_name)
            row = self._main.execute(f"SELECT COUNT(*) FROM {quoted}").fetchone()
            return int(row[0])

    def check_integrity(self) -> list[str]:
        """PK-uniqueness and FK-reference checks over the recorded schema."""
        violations: list[str] = []
        with self._lock:
            self._ensure_open()
            for table in self._tables.values():
                for constraint in table.constraints:
                    if constraint.kind is ast.ConstraintKind.PRIMARY_KEY:
                        violations.extend(self._check_primary_key(table, constraint))
                    elif constraint.kind is ast.ConstraintKind.FOREIGN_KEY:
                        violations.extend(self._check_foreign_key(table, constraint))
        return violations

    def _check_primary_key(
        self, table: ast.CreateTable, constraint: ast.TableConstraint
    ) -> list[str]:
        quote = self.dialect.quote_identifier
        columns = ", ".join(quote(column) for column in constraint.columns)
        sql = (
            f"SELECT {columns} FROM {quote(table.name)} "
            f"GROUP BY {columns} HAVING COUNT(*) > 1"
        )
        return [
            f"duplicate primary key {tuple(row)!r} in table {table.name}"
            for row in self._main.execute(sql).fetchall()
        ]

    def _check_foreign_key(
        self, table: ast.CreateTable, constraint: ast.TableConstraint
    ) -> list[str]:
        ref_table = (constraint.ref_table or "").lower()
        if ref_table not in self._tables:
            return [
                f"foreign key {constraint.name or ''} references missing table "
                f"{constraint.ref_table}"
            ]
        quote = self.dialect.quote_identifier
        join = " AND ".join(
            f"child.{quote(column)} = parent.{quote(ref_column)}"
            for column, ref_column in zip(constraint.columns, constraint.ref_columns)
        )
        not_null = " AND ".join(
            f"child.{quote(column)} IS NOT NULL" for column in constraint.columns
        )
        columns = ", ".join(f"child.{quote(column)}" for column in constraint.columns)
        first_ref = quote(constraint.ref_columns[0])
        sql = (
            f"SELECT {columns} FROM {quote(table.name)} child "
            f"LEFT JOIN {quote(constraint.ref_table)} parent ON {join} "
            f"WHERE parent.{first_ref} IS NULL AND {not_null} LIMIT 1"
        )
        return [
            f"foreign key violation in {table.name}: {tuple(row)!r} not in "
            f"{constraint.ref_table}"
            for row in self._main.execute(sql).fetchall()
        ]

    # -- statistics / caches -------------------------------------------------

    def register_partitioned_table(
        self,
        table_name: str,
        ttid_column: str,
        local_key_columns: Sequence[str] = (),
    ) -> None:
        """Record the tenant column so statistics gain per-tenant histograms."""
        self._ttid_hints[table_name.lower()] = ttid_column.lower()

    def collect_statistics(self) -> StatisticsCatalog:
        """Scan every recorded table into fresh planner statistics."""
        with self._lock:
            self._ensure_open()
            for table in list(self._tables.values()):
                self._collect_table(table)
        return self._statistics

    def statistics(self) -> StatisticsCatalog:
        """The current statistics, refreshing tables made stale by DML."""
        policy = self._refresh_policy
        with self._lock:
            self._ensure_open()
            for name, table in list(self._tables.items()):
                if policy.is_stale(
                    self._statistics.table(name), self._stat_mutations.get(name, 0)
                ):
                    self._collect_table(table)
        return self._statistics

    def _collect_table(self, table: ast.CreateTable) -> None:
        name = table.name.lower()
        quoted = self.dialect.quote_identifier(table.name)
        raw = self._main.execute(f"SELECT * FROM {quoted}").fetchall()
        if self.convert_iso_dates:
            rows = [tuple(_from_sqlite(value) for value in row) for row in raw]
        else:
            rows = [tuple(row) for row in raw]
        self._statistics.put(
            collect_table_stats(
                name,
                [column.name for column in table.columns],
                rows,
                ttid_column=self._ttid_hints.get(name),
            )
        )
        self._stat_mutations[name] = 0

    def _note_mutations(self, table_name: str, count: int) -> None:
        name = table_name.lower()
        self._stat_mutations[name] = self._stat_mutations.get(name, 0) + max(count, 0)

    def clear_function_caches(self) -> None:
        """Drop the memoized results of every registered immutable UDF."""
        with self._lock:
            for function in self._functions.values():
                function.clear_cache()

    # -- lifecycle -----------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise BackendError("this sqlite backend connection is closed")

    def close(self) -> None:
        """Close both sqlite3 connections and delete an owned temp file."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"SQLiteConnection(path={self._path!r}, profile={self.profile.name!r}, "
            f"tables={len(self._tables)})"
        )


class SQLiteBackend(Backend):
    """Backend over one (temporary-file) SQLite database."""

    name = "sqlite"
    dialect = SQLITE_DIALECT

    def __init__(
        self,
        profile: Union[str, BackendProfile] = "postgres",
        path: Optional[str] = None,
    ) -> None:
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError as exc:
                raise BackendError(f"unknown back-end profile {profile!r}") from exc
        self.profile = profile
        owns_file = path is None
        if path is None:
            handle, path = tempfile.mkstemp(prefix="repro-sqlite-", suffix=".db")
            os.close(handle)
        self.path = path
        self._connection = SQLiteConnection(path, profile, owns_file=owns_file)

    def connect(self) -> SQLiteConnection:
        """The shared connection to this backend's database file."""
        return self._connection

    def close(self) -> None:
        """Close the connection (removing the temp database if owned)."""
        self._connection.close()


def _dispose(
    main: sqlite3.Connection, side: sqlite3.Connection, path: str, owns_file: bool
) -> None:
    """Finalizer body: must not reference the connection object itself."""
    for connection in (main, side):
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close is best-effort
            pass
    if owns_file:
        for suffix in ("", "-journal", "-wal", "-shm"):
            try:
                os.unlink(path + suffix)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# value conversion
# ---------------------------------------------------------------------------


def _to_sqlite(value: Any) -> Any:
    if isinstance(value, Date):
        return str(value)
    if isinstance(value, bool):
        return int(value)
    return value


def _from_sqlite(value: Any) -> Any:
    if isinstance(value, str) and len(value) == 10 and _ISO_DATE.match(value):
        try:
            return Date.from_string(value)
        except ValueError:  # pragma: no cover - e.g. '9999-99-99' in user data
            return value
    return value


def _fn_concat(*args: Any) -> Optional[str]:
    if any(argument is None for argument in args):
        return None
    return "".join(str(argument) for argument in args)
