"""Backend-neutral result and statistics types.

Every execution backend (the in-memory engine, SQLite, ...) returns the same
result shapes, so the layers above — the MTBase middleware, the gateway, the
benchmark harness — never need to know which DBMS actually ran a statement:

* :class:`QueryResult` for materialized SELECT results,
* :class:`RowStream` for incrementally produced SELECT results (the DB-API
  cursor's ``fetchmany`` path),
* :class:`StatementResult` for everything else,
* :class:`ExecutionStats` for the statement/UDF counters the benchmarks and
  tests read.

Both SELECT shapes share the :class:`ColumnAccess` protocol — ``columns``,
``column_index`` and lazy ``iter_dicts`` work without materializing rows
(see ``docs/api.md`` for the full container protocol).
:mod:`repro.engine` re-exports these names for backwards compatibility.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional, Union

from .errors import ExecutionError


class ColumnAccess:
    """Column-name protocol shared by materialized and streaming results.

    Implementors provide a ``columns`` attribute/property; everything here
    derives from it and never touches rows, so it is as valid on a
    :class:`RowStream` whose rows have not been produced yet as on a fully
    materialized :class:`QueryResult`.
    """

    columns: list[str]

    def column_index(self, name: str) -> int:
        """Position of the result column ``name`` (case-insensitive).

        Raises :class:`ExecutionError` both for a missing column and for an
        ambiguous one — silently returning the first of several same-named
        columns would make ``column_values`` read the wrong data.
        """
        target = name.lower()
        matches = [
            index for index, column in enumerate(self.columns) if column.lower() == target
        ]
        if not matches:
            raise ExecutionError(f"result has no column {name!r}")
        if len(matches) > 1:
            candidates = ", ".join(
                f"{self.columns[index]!r} (position {index})" for index in matches
            )
            raise ExecutionError(
                f"ambiguous result column {name!r}: matches {candidates}; "
                f"alias the query's output columns to disambiguate"
            )
        return matches[0]

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over row tuples (implementors define row production)."""
        raise NotImplementedError

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Rows as ``{column: value}`` dicts, produced lazily in row order.

        On a :class:`RowStream` this consumes the stream row by row without
        ever holding the full result.
        """
        columns = self.columns
        for row in self:
            yield dict(zip(columns, row))


@dataclass(repr=False)
class QueryResult(ColumnAccess):
    """Result of executing a SELECT: column names plus row tuples.

    The container protocol mirrors a row list: ``len(result)`` and
    ``bool(result)`` count/test the rows, ``iter(result)`` yields row tuples.
    Column access goes through :meth:`column_index` / :meth:`column_values`,
    which treat names case-insensitively and refuse ambiguous names rather
    than silently picking one (see :meth:`column_index`).
    """

    columns: list[str]
    rows: list[tuple]

    def __len__(self) -> int:
        """Number of rows (matching ``__bool__`` and ``__iter__``)."""
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over the row tuples."""
        return iter(self.rows)

    def __bool__(self) -> bool:
        """True when the result has at least one row."""
        return bool(self.rows)

    def __repr__(self) -> str:
        """Concise summary — the dataclass default would dump every row."""
        return f"QueryResult(columns={self.columns!r}, rows=<{len(self.rows)} rows>)"

    def column_values(self, name: str) -> list[Any]:
        """All values of the (unambiguous) result column ``name``, row order."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict[str, Any]]:
        """The rows as ``{column: value}`` dicts (later duplicate names win)."""
        return list(self.iter_dicts())

    def first(self) -> Optional[tuple]:
        """The first row, or ``None`` for an empty result."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The first column of the first row (``None`` when empty) — for
        single-value queries like ``SELECT COUNT(*) ...``."""
        if not self.rows or not self.rows[0]:
            return None
        return self.rows[0][0]


class RowStream(ColumnAccess):
    """An incrementally produced SELECT result: columns now, rows on demand.

    Backends return a ``RowStream`` from ``execute_stream`` when they can
    yield rows before the full result set exists (the engine's lazy pipeline,
    SQLite's incremental cursor, the cluster's single-shard path); backends
    that must materialize simply wrap the finished row list — the consumer
    cannot tell the difference.

    The stream is single-use and forward-only: ``__iter__``/:meth:`fetch`
    consume it, :meth:`materialize` drains the remainder into an ordinary
    :class:`QueryResult`.  ``close()`` releases the producer early (e.g. an
    open DBMS cursor); iterating a closed stream raises.
    """

    def __init__(
        self,
        columns: list[str],
        rows: Iterable[tuple],
        on_close: Optional[Callable[[], None]] = None,
    ) -> None:
        self.columns = list(columns)
        self._rows = iter(rows)
        self._on_close = on_close
        self._closed = False
        self._exhausted = False
        #: rows handed out so far (drives the cursor's ``rowcount``)
        self.rows_produced = 0

    def __iter__(self) -> Iterator[tuple]:
        """Yield the remaining rows, consuming the stream."""
        while True:
            row = self.fetch()
            if row is None:
                return
            yield row

    def fetch(self) -> Optional[tuple]:
        """The next row, or ``None`` when the stream is exhausted."""
        if self._exhausted:
            return None
        if self._closed:
            raise ExecutionError("this row stream is closed")
        try:
            row = next(self._rows)
        except StopIteration:
            self._exhausted = True
            self.close()
            return None
        self.rows_produced += 1
        return row

    def fetchmany(self, size: int) -> list[tuple]:
        """Up to ``size`` further rows (fewer only near exhaustion)."""
        batch: list[tuple] = []
        for _ in range(size):
            row = self.fetch()
            if row is None:
                break
            batch.append(row)
        return batch

    def materialize(self) -> QueryResult:
        """Drain the remaining rows into a :class:`QueryResult`."""
        return QueryResult(columns=self.columns, rows=list(self))

    def close(self) -> None:
        """Release the producing resources; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._rows = iter(())
        if self._on_close is not None:
            callback, self._on_close = self._on_close, None
            callback()

    def __repr__(self) -> str:
        """Concise summary (never consumes rows)."""
        state = "closed" if self._closed else "open"
        return (
            f"RowStream(columns={self.columns!r}, produced={self.rows_produced}, "
            f"{state})"
        )


@dataclass
class StatementResult:
    """Result of a non-SELECT statement."""

    statement_type: str
    rowcount: int = 0


ExecuteResult = Union[QueryResult, StatementResult]


class KernelCounters:
    """Running typed-vs-generic kernel dispatch tally for one engine.

    Every specialization-capable batch kernel bumps ``typed`` when it ran a
    :class:`~repro.engine.columns.TypedColumn` fast path and ``generic``
    when it fell back to the object-list loop, so ``explain(analyze=True)``
    can show *why* an operator was fast.  ``proven`` counts the subset of
    typed dispatches that additionally skipped all null handling because the
    static analyzer *proved* every referenced column NOT NULL at compile
    time (see ``docs/typecheck.md``).  Increments are plain (unlocked)
    ``+= 1`` on the hot path; under concurrent sessions the tallies are
    best-effort, which is fine for a profiling aid.
    """

    __slots__ = ("typed", "generic", "proven")

    def __init__(self) -> None:
        self.typed = 0
        self.generic = 0
        self.proven = 0

    def snapshot(self) -> tuple[int, int, int]:
        """The current ``(typed, generic, proven)`` triple (for deltas)."""
        return (self.typed, self.generic, self.proven)

    def reset(self) -> None:
        """Zero all tallies **in place** (compiled kernels keep references
        to this object, so it must never be replaced wholesale)."""
        self.typed = 0
        self.generic = 0
        self.proven = 0


@dataclass
class OperatorProfile:
    """Accumulated execution profile of one plan operator.

    Filled by the engine's executor as batches (or rows, in row-at-a-time
    mode) flow through an operator; rendered by ``MTConnection.explain()``
    next to the compile-side per-pass timings so compile cost and execution
    cost are separable at a glance.  ``typed_kernels`` / ``generic_kernels``
    count specialization-capable kernel evaluations attributed to the
    operator's stage (both stay 0 in row-at-a-time mode).
    """

    operator: str
    batches: int = 0
    rows: int = 0
    seconds: float = 0.0
    typed_kernels: int = 0
    generic_kernels: int = 0
    proven_kernels: int = 0

    @property
    def rows_per_batch(self) -> float:
        """Mean rows per batch (0.0 before any batch was recorded)."""
        if self.batches == 0:
            return 0.0
        return self.rows / self.batches

    def describe(self) -> str:
        """One human-readable profile line."""
        line = (
            f"{self.operator}: {self.rows} rows in {self.batches} batches "
            f"(avg {self.rows_per_batch:.1f} rows/batch, {self.seconds * 1000:.3f} ms)"
        )
        if self.typed_kernels or self.generic_kernels or self.proven_kernels:
            line += (
                f", kernels typed={self.typed_kernels} "
                f"generic={self.generic_kernels} proven={self.proven_kernels}"
            )
        return line


@dataclass
class ExecutionStats:
    """Statement-level counters surfaced to tests and the benchmark harness.

    Counters are incremented through :meth:`add` so that concurrent sessions
    (the gateway runs many threads against one backend) do not lose updates
    to read-modify-write races.  Besides the scalar counters, the engine
    records a per-operator execution profile (batch counts, row counts,
    wall time) via :meth:`record_operator`; :meth:`operator_snapshot` hands
    consumers a stable copy.
    """

    udf_calls: int = 0
    udf_executions: int = 0
    udf_cache_hits: int = 0
    subquery_runs: int = 0
    statements: int = 0
    operator_profiles: dict = field(default_factory=dict, compare=False)
    #: typed-vs-generic kernel dispatch tally; identity-stable for the
    #: engine's lifetime because compiled kernels close over it
    kernels: KernelCounters = field(
        default_factory=KernelCounters, repr=False, compare=False
    )
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, **counts: int) -> None:
        """Atomically add to one or more counters."""
        with self._lock:
            for name, amount in counts.items():
                setattr(self, name, getattr(self, name) + amount)

    def add_udf_call(self, executed: int) -> None:
        """Hot-path variant of :meth:`add` for the per-UDF-call counters
        (one lock acquisition, no kwargs/getattr overhead)."""
        with self._lock:
            self.udf_calls += 1
            self.udf_executions += executed
            self.udf_cache_hits += 1 - executed

    def record_operator(
        self,
        operator: str,
        rows: int,
        seconds: float,
        batches: int = 1,
        typed_kernels: int = 0,
        generic_kernels: int = 0,
        proven_kernels: int = 0,
    ) -> None:
        """Fold one measurement into an operator's profile.

        ``batches`` carries the number of bounded windows the operator
        consumed (1 for row-at-a-time or single-batch stages);
        ``typed_kernels`` / ``generic_kernels`` / ``proven_kernels`` the
        kernel-dispatch deltas attributed to this stage.
        """
        with self._lock:
            profile = self.operator_profiles.get(operator)
            if profile is None:
                profile = OperatorProfile(operator=operator)
                self.operator_profiles[operator] = profile
            profile.batches += batches
            profile.rows += rows
            profile.seconds += seconds
            profile.typed_kernels += typed_kernels
            profile.generic_kernels += generic_kernels
            profile.proven_kernels += proven_kernels

    def operator_snapshot(self) -> list[OperatorProfile]:
        """A point-in-time copy of the operator profiles (insertion order)."""
        with self._lock:
            return [
                OperatorProfile(
                    operator=profile.operator,
                    batches=profile.batches,
                    rows=profile.rows,
                    seconds=profile.seconds,
                    typed_kernels=profile.typed_kernels,
                    generic_kernels=profile.generic_kernels,
                    proven_kernels=profile.proven_kernels,
                )
                for profile in self.operator_profiles.values()
            ]

    def reset(self) -> None:
        """Zero every counter and drop operator profiles (between runs)."""
        with self._lock:
            self.udf_calls = 0
            self.udf_executions = 0
            self.udf_cache_hits = 0
            self.subquery_runs = 0
            self.statements = 0
            self.operator_profiles = {}
            self.kernels.reset()
