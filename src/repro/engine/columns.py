"""Typed columns: ``array``-backed payloads for type-stable table columns.

The generic batch kernels in :mod:`repro.engine.vector` loop over untyped
Python object lists and pay a per-element type guard (or a full
``sql_compare`` coercion) on every value.  Where a column's type is
*provably stable* the engine can do better, MonetDB/X100 style: store the
column once as a compact typed payload — an ``array('q')`` of integers, an
``array('d')`` of floats, an ``array('q')`` of day ordinals for dates, or a
plain string list — plus an explicit null index set, and run specialized
kernels that skip the per-value checks entirely.

Stability is *observed*, not assumed: :func:`build_typed_column` checks
every stored value against the declared :class:`~repro.sql.types.SQLType`
and refuses (returns ``None``) on the first mismatch — a mixed-type column,
a ``DECIMAL`` slot holding an ``int``, an integer outside the signed 64-bit
range an ``array('q')`` can hold.  Refusal is cheap and safe: callers fall
back to the generic object-list kernels, which remain the semantic source
of truth.  Bit-identity is preserved by construction because every payload
round-trips its values exactly: ``array('d')`` stores IEEE-754 doubles (the
engine's ``DECIMAL``), ``array('q')`` stores 64-bit integers, and dates are
stored as their :attr:`~repro.sql.types.Date.days` ordinal, whose ordering
equals calendar ordering.

:meth:`repro.engine.storage.Table.typed_column` caches one
:class:`TypedColumn` (or the ``None`` refusal) per column per table
*version*, so repeated scans of a stable table pay the stability check
once per mutation epoch.  ``REPRO_ENGINE_TYPED=0`` switches the whole
layer off (see :mod:`repro.engine.config`).
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

from ..sql.types import Date, SQLType

#: payload kinds whose elements behave like plain Python numbers under the
#: comparison/arithmetic operators (the codegen kernels require these)
NUMERIC_KINDS = frozenset({"int", "float"})

#: bounds of an ``array('q')`` slot; Python ints outside refuse typing
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


class TypedColumn:
    """One type-stable column: a compact payload plus an explicit null set.

    ``kind`` names the element family:

    * ``"int"``   — ``values`` is an ``array('q')``; NULL slots hold ``0``,
    * ``"float"`` — ``values`` is an ``array('d')``; NULL slots hold ``0.0``,
    * ``"date"``  — ``values`` is an ``array('q')`` of day ordinals
      (:attr:`repro.sql.types.Date.days`); NULL slots hold ``0``,
    * ``"str"``   — ``values`` is the object list itself (strings and
      ``None``), kept by reference for zero-copy column access.

    ``nulls`` is a ``frozenset`` of payload positions holding SQL NULL, or
    ``None`` for a null-free column — the "null bitmap" of the typed layer.
    Specialized kernels index ``values`` directly and consult ``nulls``
    only when present, so the null-free hot path runs with no per-element
    branching beyond the operator itself.
    """

    __slots__ = ("kind", "values", "nulls")

    def __init__(
        self,
        kind: str,
        values,
        nulls: Optional[frozenset] = None,
    ) -> None:
        self.kind = kind
        self.values = values
        self.nulls = nulls

    @property
    def null_free(self) -> bool:
        """Whether the column holds no SQL NULL at all."""
        return self.nulls is None

    def object_values(self):
        """The payload *as the object column*, or ``None`` when they differ.

        A ``"str"`` payload and a null-free numeric payload can serve
        directly as the column array handed to generic kernels (iteration
        yields exactly the stored objects).  Numeric payloads **with**
        nulls pad the NULL slots with ``0``, and date payloads hold day
        ordinals instead of :class:`~repro.sql.types.Date` objects — both
        return ``None`` so callers gather objects the generic way.
        """
        if self.kind == "str":
            return self.values
        if self.kind in NUMERIC_KINDS and self.nulls is None:
            return self.values
        return None


def build_typed_column(sql_type: SQLType, values: Sequence) -> Optional[TypedColumn]:
    """Build a :class:`TypedColumn` for observed ``values``, or refuse.

    The declared ``sql_type`` selects the candidate payload; every value is
    then verified against it (exact ``type`` checks, not ``isinstance``, so
    ``bool`` never masquerades as ``int`` and subclasses cannot change
    round-trip behaviour).  Any mismatch returns ``None`` — the column is
    not provably stable and stays on the generic object-list path.
    """
    if sql_type is SQLType.INTEGER:
        return _build_numeric(values, int, "q", "int")
    if sql_type is SQLType.DECIMAL:
        return _build_numeric(values, float, "d", "float")
    if sql_type is SQLType.DATE:
        return _build_date(values)
    if sql_type is SQLType.VARCHAR:
        return _build_str(values)
    return None


def _build_numeric(values: Sequence, element_type: type, typecode: str, kind: str):
    """``array(typecode)`` payload for an all-``element_type`` column."""
    payload = array(typecode)
    append = payload.append
    nulls: list[int] = []
    for position, value in enumerate(values):
        if type(value) is element_type:
            if element_type is int and not (_INT64_MIN <= value <= _INT64_MAX):
                return None
            append(value)
        elif value is None:
            nulls.append(position)
            append(0)
        else:
            return None
    return TypedColumn(kind, payload, frozenset(nulls) if nulls else None)


def _build_date(values: Sequence) -> Optional[TypedColumn]:
    """``array('q')`` of day ordinals for a stable DATE column.

    DATE slots commonly hold ISO strings (the engine stores dates as
    inserted); :func:`~repro.sql.types.sql_compare` parses those through
    :meth:`Date.from_string` when comparing against a ``Date``, so
    pre-parsing to the same ordinal here is bit-identical.  A string that
    does not parse refuses the whole column — the generic path keeps the
    runtime error for it.
    """
    payload = array("q")
    append = payload.append
    nulls: list[int] = []
    for position, value in enumerate(values):
        if type(value) is Date:
            append(value.days)
        elif type(value) is str:
            try:
                append(Date.from_string(value).days)
            except ValueError:
                return None
        elif value is None:
            nulls.append(position)
            append(0)
        else:
            return None
    return TypedColumn("date", payload, frozenset(nulls) if nulls else None)


def _build_str(values: Sequence) -> Optional[TypedColumn]:
    """Zero-copy string payload (the object list itself) with a null set."""
    nulls: list[int] = []
    for position, value in enumerate(values):
        if value is None:
            nulls.append(position)
        elif type(value) is not str:
            return None
    payload = values if isinstance(values, list) else list(values)
    return TypedColumn("str", payload, frozenset(nulls) if nulls else None)
