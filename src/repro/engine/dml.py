"""Execution of INSERT / UPDATE / DELETE statements."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import ExecutionError
from ..sql import ast
from .expressions import ExpressionCompiler, Scope

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionContext


def execute_insert(context: "ExecutionContext", statement: ast.Insert) -> int:
    """Insert literal rows or the result of a SELECT; returns the row count."""
    table = context.database.catalog.table(statement.table)
    inserted = 0
    if statement.query is not None:
        result = context.executor.execute(statement.query)
        for row in result.rows:
            if statement.columns:
                table.insert_named(statement.columns, row)
            else:
                table.insert_row(row)
            inserted += 1
        return inserted
    compiler = ExpressionCompiler(Scope([]), context)
    for value_exprs in statement.rows:
        values = [compiler.compile(expr)((), ()) for expr in value_exprs]
        if statement.columns:
            table.insert_named(statement.columns, values)
        else:
            table.insert_row(values)
        inserted += 1
    return inserted


def execute_update(context: "ExecutionContext", statement: ast.Update) -> int:
    """Update rows in place; returns the number of rows changed."""
    table = context.database.catalog.table(statement.table)
    scope = Scope([(statement.table, column.name) for column in table.schema.columns])
    compiler = ExpressionCompiler(scope, context)
    predicate = compiler.compile_predicate(statement.where) if statement.where is not None else None
    assignments = []
    for assignment in statement.assignments:
        index = table.schema.column_index(assignment.column)
        assignments.append((index, compiler.compile(assignment.value)))

    changed = 0
    new_rows = []
    for row in table.rows:
        if predicate is None or predicate(row, ()) is True:
            values = list(row)
            for index, value_fn in assignments:
                values[index] = value_fn(row, ())
            new_row = tuple(values)
            table._check_not_null(new_row)
            new_rows.append(new_row)
            changed += 1
        else:
            new_rows.append(row)
    table.rows = new_rows
    table.version += 1
    return changed


def execute_delete(context: "ExecutionContext", statement: ast.Delete) -> int:
    """Delete matching rows; returns the number of rows removed."""
    table = context.database.catalog.table(statement.table)
    if statement.where is None:
        removed = len(table.rows)
        table.truncate()
        return removed
    scope = Scope([(statement.table, column.name) for column in table.schema.columns])
    compiler = ExpressionCompiler(scope, context)
    predicate = compiler.compile_predicate(statement.where)
    kept = [row for row in table.rows if predicate(row, ()) is not True]
    removed = len(table.rows) - len(kept)
    table.rows = kept
    table.version += 1
    return removed
