"""Query executor: prepared SELECT plans, aggregation, ordering, sub-queries.

:class:`Executor` prepares a :class:`PreparedSelect` per statement execution.
Preparation compiles every expression to a closure (see
:mod:`repro.engine.expressions`) and plans the joins (see
:mod:`repro.engine.planner`); running a prepared plan is then a tight loop
over row tuples.  Prepared plans for uncorrelated sub-queries cache their
result so that ``x IN (SELECT ...)`` style predicates cost one execution per
statement, not one per row.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Optional

from ..errors import ExecutionError, FunctionError
from ..result import ExecutionStats, QueryResult, RowStream
from ..sql import ast
from ..sql.printer import to_sql
from ..sql.transform import transform_expression
from ..sql.types import sort_key
from .expressions import (
    CompiledExpr,
    ExpressionCompiler,
    Scope,
    find_aggregates,
)
from .functions import BUILTIN_SCALARS, CountAggregate, Function, make_aggregate
from .planner import EmptyPipeline, JoinPipeline, Planner
from .vector import (
    BatchExpressionCompiler,
    RowBatch,
    apply_batch_predicates,
)


@dataclass
class ValueSet:
    """Materialized membership set for IN (sub-query) predicates."""

    values: set
    has_null: bool


class ExecutionContext:
    """Services available to compiled expressions at run time."""

    def __init__(self, database, executor: "Executor") -> None:
        self.database = database
        self.executor = executor

    # -- functions -----------------------------------------------------------

    def call_function(self, name: str, args: list[Any]) -> Any:
        catalog = self.database.catalog
        stats = self.database.stats
        if catalog.has_function(name):
            function = catalog.function(name)
            value, executed = function.invoke(
                args, self, use_cache=self.database.profile.cache_immutable_functions
            )
            stats.add_udf_call(executed)
            return value
        builtin = BUILTIN_SCALARS.get(name.lower())
        if builtin is not None:
            return builtin(*args)
        raise FunctionError(f"unknown function {name!r}")

    def batch_call_function(self, name: str, columns: list[list], n: int) -> list:
        """Call a scalar function over argument columns (the batch hot path).

        Catalog UDFs under a memoizing profile are *memo-batched*: the
        ``(args)`` keys of a batch are deduplicated, the shared memo in
        :meth:`repro.engine.functions.Function.invoke` is hit once per
        distinct key, and results scatter to every occurrence.  Counters
        stay identical to row-at-a-time execution — each duplicate
        occurrence is still one call that hit the cache, accounted in bulk
        (:meth:`~repro.engine.functions.Function.add_memo_hits`) — so the
        UDF-cache ablation counts distinct conversion evaluations the same
        in both modes.  Non-memoizing profiles (System C cannot declare
        UDFs deterministic) call per row, preserving their per-row
        execution counts.
        """
        catalog = self.database.catalog
        stats = self.database.stats
        if catalog.has_function(name):
            function = catalog.function(name)
            use_cache = self.database.profile.cache_immutable_functions
            if use_cache and function.immutable:
                out = [None] * n
                memo: dict[tuple, Any] = {}
                duplicates = 0
                for position in range(n):
                    args = tuple(column[position] for column in columns)
                    try:
                        hit = args in memo
                    except TypeError:  # unhashable argument: no dedupe
                        value, executed = function.invoke(args, self, use_cache=True)
                        stats.add_udf_call(executed)
                        out[position] = value
                        continue
                    if hit:
                        out[position] = memo[args]
                        duplicates += 1
                    else:
                        value, executed = function.invoke(args, self, use_cache=True)
                        stats.add_udf_call(executed)
                        memo[args] = value
                        out[position] = value
                if duplicates:
                    function.add_memo_hits(duplicates)
                    stats.add(udf_calls=duplicates, udf_cache_hits=duplicates)
                return out
            out = []
            for position in range(n):
                args = tuple(column[position] for column in columns)
                value, executed = function.invoke(args, self, use_cache=use_cache)
                stats.add_udf_call(executed)
                out.append(value)
            return out
        builtin = BUILTIN_SCALARS.get(name.lower())
        if builtin is not None:
            return [
                builtin(*(column[position] for column in columns))
                for position in range(n)
            ]
        raise FunctionError(f"unknown function {name!r}")

    def run_function_body(self, function: Function, args: list[Any]) -> Any:
        prepared = self.executor.function_body_plan(function, len(args))
        rows = prepared.run((tuple(args),))
        if not rows:
            return None
        return rows[0][0]

    # -- sub-queries -----------------------------------------------------------

    def prepare_subquery(
        self, select: ast.Select, parent_scope: Optional[Scope], facts=None
    ) -> "PreparedSelect":
        # facts flow into sub-plans because proven-NOT-NULL sets are keyed by
        # base-table name — schema truths, valid at any nesting depth
        return self.executor.prepare(select, parent_scope, facts=facts)


class PreparedSelect:
    """A fully compiled SELECT plan, runnable for any outer-row context."""

    def __init__(
        self,
        executor: "Executor",
        select: ast.Select,
        parent_scope: Optional[Scope],
        facts=None,
    ) -> None:
        self._executor = executor
        self._context = executor.context
        self._select = select
        self._parent_scope = parent_scope
        self._facts = facts
        self._cache_rows: Optional[list[tuple]] = None
        self._cache_value_set: Optional[ValueSet] = None
        self._scopes: list[Scope] = []
        self._children: list[PreparedSelect] = []
        self._compile()

    # -- compilation ----------------------------------------------------------

    def _compile(self) -> None:
        select = self._select
        vector = self._context.database.vector
        self._vector = vector
        self._vectorized = vector.enabled
        # operator profiles are recorded for top-level statements only;
        # per-outer-row sub-query runs would drown the profile in lock traffic
        self._profile_ops = self._parent_scope is None
        planner = Planner(self._context, self._parent_scope, facts=self._facts)
        self._pipeline, self._scope, subquery_conjuncts = planner.plan(select)
        self._scopes.extend(planner.created_scopes)
        self._children.extend(self._pipeline.children())

        if self._vectorized:
            expr_compiler = BatchExpressionCompiler(self._scope, self._context)
        else:
            expr_compiler = ExpressionCompiler(self._scope, self._context)
        self._post_filters = [
            expr_compiler.compile_predicate(conjunct) for conjunct in subquery_conjuncts
        ]

        items = self._expand_stars(select.items)
        self.output_columns = [self._output_name(item) for item in items]
        alias_map = {
            item.alias.lower(): item.expr for item in items if item.alias is not None
        }

        aggregates: list[ast.FunctionCall] = []
        for item in items:
            aggregates.extend(find_aggregates(item.expr))
        aggregates.extend(find_aggregates(select.having))
        for order in select.order_by:
            aggregates.extend(find_aggregates(self._substitute_aliases(order.expr, alias_map)))

        self._grouped = bool(select.group_by) or bool(aggregates)
        if self._grouped:
            self._compile_grouped(select, items, aggregates, alias_map, expr_compiler)
        else:
            self._compile_plain(select, items, alias_map, expr_compiler)

        self._distinct = select.distinct
        self._limit = select.limit
        self.correlated = any(scope.uses_parent for scope in self._scopes) or any(
            child.correlated for child in self._children
        )

    def _compile_plain(
        self,
        select: ast.Select,
        items: list[ast.SelectItem],
        alias_map: dict[str, ast.Expression],
        compiler,
    ) -> None:
        if select.having is not None:
            raise ExecutionError("HAVING requires GROUP BY or aggregation")
        self._item_fns = [compiler.compile(item.expr) for item in items]
        self._order_fns = [
            (compiler.compile(self._substitute_aliases(order.expr, alias_map)), order.descending)
            for order in select.order_by
        ]
        self._group_key_fns = []
        self._aggregate_specs = []
        self._having_fn = None

    def _compile_grouped(
        self,
        select: ast.Select,
        items: list[ast.SelectItem],
        aggregates: list[ast.FunctionCall],
        alias_map: dict[str, ast.Expression],
        compiler,
    ) -> None:
        group_exprs = [
            self._substitute_aliases(expr, alias_map, prefer_input=True)
            for expr in select.group_by
        ]
        unique_aggregates: dict[str, ast.FunctionCall] = {}
        for aggregate in aggregates:
            unique_aggregates.setdefault(to_sql(aggregate), aggregate)

        mapping: dict[str, str] = {}
        group_columns: list[tuple[Optional[str], str]] = []
        for position, expr in enumerate(group_exprs):
            placeholder = f"__key_{position}"
            mapping.setdefault(to_sql(expr), placeholder)
            group_columns.append((None, placeholder))
        self._aggregate_specs = []
        for position, (text, aggregate) in enumerate(unique_aggregates.items()):
            placeholder = f"__agg_{position}"
            mapping[text] = placeholder
            group_columns.append((None, placeholder))
            if aggregate.args and not isinstance(aggregate.args[0], ast.Star):
                arg_fn = compiler.compile(aggregate.args[0])
            else:
                arg_fn = None
            self._aggregate_specs.append((aggregate, arg_fn))

        self._group_key_fns = [compiler.compile(expr) for expr in group_exprs]

        group_scope = Scope(group_columns, parent=self._parent_scope)
        self._scopes.append(group_scope)
        if self._vectorized:
            group_compiler = BatchExpressionCompiler(group_scope, self._context)
        else:
            group_compiler = ExpressionCompiler(group_scope, self._context)

        def rewrite(expr: Optional[ast.Expression]) -> Optional[ast.Expression]:
            if expr is None:
                return None
            return transform_expression(expr, self._group_replacer(mapping))

        self._item_fns = [group_compiler.compile(rewrite(item.expr)) for item in items]
        having = rewrite(self._substitute_aliases(select.having, alias_map)) if select.having is not None else None
        self._having_fn = group_compiler.compile_predicate(having) if having is not None else None
        self._order_fns = [
            (
                group_compiler.compile(rewrite(self._substitute_aliases(order.expr, alias_map))),
                order.descending,
            )
            for order in select.order_by
        ]

    @staticmethod
    def _group_replacer(mapping: dict[str, str]):
        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
                return None
            text = to_sql(node)
            placeholder = mapping.get(text)
            if placeholder is not None:
                return ast.Column(name=placeholder)
            if isinstance(node, ast.FunctionCall) and node.is_aggregate:
                raise ExecutionError(
                    f"aggregate {text} is not available in this grouping context"
                )
            return None

        return replacer

    def _substitute_aliases(
        self,
        expr: Optional[ast.Expression],
        alias_map: dict[str, ast.Expression],
        prefer_input: bool = False,
    ) -> Optional[ast.Expression]:
        """Replace references to SELECT aliases in ORDER BY / GROUP BY / HAVING."""
        if expr is None or not alias_map:
            return expr

        def replacer(node: ast.Expression) -> Optional[ast.Expression]:
            if isinstance(node, ast.Column) and node.table is None:
                target = alias_map.get(node.name.lower())
                if target is None:
                    return None
                if prefer_input and self._scope.resolve_local(node.name, None) is not None:
                    return None
                if self._scope.resolve_local(node.name, None) is not None and isinstance(
                    target, ast.Column
                ):
                    return None
                return target
            return None

        return transform_expression(expr, replacer)

    # -- star expansion ---------------------------------------------------------

    def _expand_stars(self, items: list[ast.SelectItem]) -> list[ast.SelectItem]:
        expanded: list[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for binding, column in self._pipeline.schema:
                    if item.expr.table is not None and binding != item.expr.table.lower():
                        continue
                    expanded.append(
                        ast.SelectItem(expr=ast.Column(name=column, table=binding), alias=column)
                    )
            else:
                expanded.append(item)
        if not expanded:
            raise ExecutionError("SELECT list is empty after star expansion")
        return expanded

    @staticmethod
    def _output_name(item: ast.SelectItem) -> str:
        if item.alias:
            return item.alias
        if isinstance(item.expr, ast.Column):
            return item.expr.name
        return to_sql(item.expr)

    # -- execution ----------------------------------------------------------------

    def estimate(self) -> int:
        return self._pipeline.estimate()

    def run(self, outers: tuple = (), limit: Optional[int] = None) -> list[tuple]:
        if not self.correlated and self._cache_rows is not None:
            rows = self._cache_rows
        else:
            rows = self._run_uncached(outers)
            if not self.correlated:
                self._cache_rows = rows
        if limit is not None:
            return rows[:limit]
        return rows

    def run_value_set(self, outers: tuple = ()) -> ValueSet:
        if not self.correlated and self._cache_value_set is not None:
            return self._cache_value_set
        rows = self.run(outers)
        values = set()
        has_null = False
        for row in rows:
            value = row[0]
            if value is None:
                has_null = True
            else:
                values.add(value)
        value_set = ValueSet(values=values, has_null=has_null)
        if not self.correlated:
            self._cache_value_set = value_set
        return value_set

    @property
    def streamable(self) -> bool:
        """Whether :meth:`stream` can yield rows before the full set exists.

        Grouping/aggregation, ``ORDER BY`` and ``DISTINCT`` are barriers (the
        last row can change the first output row), so only plain
        project-filter-join queries stream incrementally; everything else
        falls back to the materializing path inside :meth:`stream`.
        """
        return not self._grouped and not self._order_fns and not self._distinct

    def stream(self, outers: tuple = ()):
        """Yield projected rows lazily (see :attr:`streamable`).

        In vectorized mode the lazy path pulls bounded row chunks from
        :meth:`~repro.engine.planner.JoinPipeline.iter_batches`, applies the
        post-filters and the projection per *batch* and honours ``LIMIT`` by
        stopping the pull early — an early ``LIMIT`` therefore materializes
        O(batch) rows.  Row mode pulls single rows from
        :meth:`~repro.engine.planner.JoinPipeline.iter_rows` instead.
        Laziness covers joining and projection — never the full *result
        set* is materialized; each base scan still evaluates its pushed-down
        filters over its whole table when first pulled (sources produce row
        lists).  Cached rows (uncorrelated sub-query memo) and
        non-streamable shapes are simply replayed from the materialized
        result.
        """
        if not self.streamable or (not self.correlated and self._cache_rows is not None):
            yield from self.run(outers)
            return
        self._context.database.stats.add(subquery_runs=1)
        filters = self._post_filters
        item_fns = self._item_fns
        limit = self._limit
        produced = 0
        if self._vectorized:
            for chunk in self._pipeline.iter_batches(outers, self._vector.batch_size):
                batch = RowBatch(chunk)
                if filters:
                    batch = apply_batch_predicates(batch, filters, outers)
                    if batch.n == 0:
                        continue
                columns = [fn(batch, outers) for fn in item_fns]
                for values in zip(*columns):
                    yield values
                    produced += 1
                    if limit is not None and produced >= limit:
                        return
            return
        for row in self._pipeline.iter_rows(outers):
            if filters and not all(
                predicate(row, outers) is True for predicate in filters
            ):
                continue
            yield tuple(fn(row, outers) for fn in item_fns)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def _run_uncached(self, outers: tuple) -> list[tuple]:
        stats = self._context.database.stats
        stats.add(subquery_runs=1)
        profiled = self._profile_ops
        batch_size = self._vector.batch_size
        if profiled:
            kernels = stats.kernels
            marks = [perf_counter(), kernels.typed, kernels.generic, kernels.proven]

            def record(operator: str, rows_count: int, batches: int = 1) -> None:
                # each stage's profile carries the wall time and the
                # typed/generic/proven kernel dispatches since the previous mark
                now = perf_counter()
                stats.record_operator(
                    operator,
                    rows_count,
                    now - marks[0],
                    batches=batches,
                    typed_kernels=kernels.typed - marks[1],
                    generic_kernels=kernels.generic - marks[2],
                    proven_kernels=kernels.proven - marks[3],
                )
                marks[0] = now
                marks[1] = kernels.typed
                marks[2] = kernels.generic
                marks[3] = kernels.proven

        if self._vectorized:
            batch = self._pipeline.execute_batch(outers)
            if profiled:
                record("scan+join", batch.n)
            if self._post_filters:
                batch = apply_batch_predicates(batch, self._post_filters, outers)
                if profiled:
                    record("filter", batch.n)
            input_rows = batch.n
            if self._grouped:
                operator = "aggregate"
                projected = self._run_grouped_vector(batch, outers)
            else:
                operator = "project"
                projected = self._run_plain_vector(batch, outers)
        else:
            rows = self._pipeline.execute(outers)
            if profiled:
                record("scan+join", len(rows))
            if self._post_filters:
                filters = self._post_filters
                rows = [
                    row
                    for row in rows
                    if all(predicate(row, outers) is True for predicate in filters)
                ]
                if profiled:
                    record("filter", len(rows))
            input_rows = len(rows)
            if self._grouped:
                operator = "aggregate"
                projected = self._run_grouped(rows, outers)
            else:
                operator = "project"
                projected = self._run_plain(rows, outers)
        if profiled:
            batches = (
                max(1, -(-input_rows // batch_size)) if self._vectorized else 1
            )
            record(operator, input_rows, batches=batches)
        if self._distinct:
            projected = self._deduplicate(projected)
            if profiled:
                record("distinct", len(projected))
        if self._order_fns:
            projected = self._order(projected)
            if profiled:
                record("order", len(projected))
        result = [row for row, _ in projected]
        if self._limit is not None:
            result = result[: self._limit]
        return result

    def _run_plain_vector(self, source: RowBatch, outers: tuple) -> list[tuple[tuple, tuple]]:
        """Batch projection: evaluate item/order columns per bounded window."""
        batch_size = self._vector.batch_size
        item_fns = self._item_fns
        order_fns = self._order_fns
        projected: list[tuple[tuple, tuple]] = []
        for start in range(0, source.n, batch_size):
            batch = source.window(start, start + batch_size)
            value_columns = [fn(batch, outers) for fn in item_fns]
            values_rows = list(zip(*value_columns))
            if order_fns:
                key_columns = [fn(batch, outers) for fn, _ in order_fns]
                keys_rows = list(zip(*key_columns))
            else:
                keys_rows = [()] * batch.n
            projected.extend(zip(values_rows, keys_rows))
        return projected

    def _run_grouped_vector(self, source: RowBatch, outers: tuple) -> list[tuple[tuple, tuple]]:
        """Batch aggregation: columnwise keys/arguments, per-group folding.

        Rows are processed in bounded windows of the source batch (windows
        over a scan batch keep typed-column access, so aggregate arguments
        like ``qty * price`` evaluate through typed kernels); within a
        window the group keys and every aggregate argument are evaluated as
        columns, the window is partitioned by key, and each group folds its
        slice via :meth:`~repro.engine.functions.Aggregate.add_many` (whole
        window) or :meth:`~repro.engine.functions.Aggregate.add_indexed`
        (group-index array, no intermediate gather) — in row order either
        way, so float accumulation is bit-identical to row mode.
        """
        specs = self._aggregate_specs
        group_key_fns = self._group_key_fns
        has_keys = bool(group_key_fns)
        batch_size = self._vector.batch_size
        groups: dict[tuple, list] = {}
        for start in range(0, source.n, batch_size):
            batch = source.window(start, start + batch_size)
            argument_columns = [
                fn(batch, outers) if fn is not None else None for _, fn in specs
            ]
            partition: dict[tuple, list[int]] = {}
            if has_keys:
                key_columns = [fn(batch, outers) for fn in group_key_fns]
                for index, key in enumerate(zip(*key_columns)):
                    bucket = partition.get(key)
                    if bucket is None:
                        partition[key] = [index]
                    else:
                        bucket.append(index)
            else:
                partition[()] = list(range(batch.n))
            whole = batch.n
            for key, indices in partition.items():
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = [
                        make_aggregate(aggregate) for aggregate, _ in specs
                    ]
                    groups[key] = accumulators
                count = len(indices)
                for accumulator, column in zip(accumulators, argument_columns):
                    if column is None:
                        # COUNT(*) needs no argument column; other argless
                        # shapes mirror row mode and feed the row tuples
                        if type(accumulator) is CountAggregate:
                            accumulator.add_count(count)
                        else:
                            batch_rows = batch.rows
                            accumulator.add_many([batch_rows[i] for i in indices])
                    elif count == whole:
                        accumulator.add_many(column)
                    else:
                        accumulator.add_indexed(column, indices)
        if not groups and not has_keys:
            groups[()] = [make_aggregate(aggregate) for aggregate, _ in specs]

        group_rows = [
            key + tuple(accumulator.result() for accumulator in accumulators)
            for key, accumulators in groups.items()
        ]
        return self._project_groups_vector(group_rows, outers)

    def _project_groups_vector(
        self, group_rows: list[tuple], outers: tuple
    ) -> list[tuple[tuple, tuple]]:
        """HAVING + projection over the merged group rows, batch at a time."""
        batch_size = self._vector.batch_size
        having_fn = self._having_fn
        item_fns = self._item_fns
        order_fns = self._order_fns
        projected: list[tuple[tuple, tuple]] = []
        for start in range(0, len(group_rows), batch_size):
            batch = RowBatch(group_rows[start : start + batch_size])
            if having_fn is not None:
                batch = apply_batch_predicates(batch, [having_fn], outers)
                if batch.n == 0:
                    continue
            value_columns = [fn(batch, outers) for fn in item_fns]
            values_rows = list(zip(*value_columns))
            if order_fns:
                key_columns = [fn(batch, outers) for fn, _ in order_fns]
                keys_rows = list(zip(*key_columns))
            else:
                keys_rows = [()] * batch.n
            projected.extend(zip(values_rows, keys_rows))
        return projected

    def _run_plain(self, rows: list[tuple], outers: tuple) -> list[tuple[tuple, tuple]]:
        item_fns = self._item_fns
        order_fns = self._order_fns
        projected = []
        for row in rows:
            values = tuple(fn(row, outers) for fn in item_fns)
            keys = tuple(fn(row, outers) for fn, _ in order_fns)
            projected.append((values, keys))
        return projected

    def _run_grouped(self, rows: list[tuple], outers: tuple) -> list[tuple[tuple, tuple]]:
        groups: dict[tuple, list] = {}
        group_key_fns = self._group_key_fns
        has_keys = bool(group_key_fns)
        for row in rows:
            key = tuple(fn(row, outers) for fn in group_key_fns) if has_keys else ()
            bucket = groups.get(key)
            if bucket is None:
                bucket = [make_aggregate(aggregate) for aggregate, _ in self._aggregate_specs]
                groups[key] = bucket
            for accumulator, (_, arg_fn) in zip(bucket, self._aggregate_specs):
                accumulator.add(arg_fn(row, outers) if arg_fn is not None else row)
        if not groups and not has_keys:
            groups[()] = [make_aggregate(aggregate) for aggregate, _ in self._aggregate_specs]

        projected = []
        for key, accumulators in groups.items():
            group_row = key + tuple(accumulator.result() for accumulator in accumulators)
            if self._having_fn is not None and self._having_fn(group_row, outers) is not True:
                continue
            values = tuple(fn(group_row, outers) for fn in self._item_fns)
            keys = tuple(fn(group_row, outers) for fn, _ in self._order_fns)
            projected.append((values, keys))
        return projected

    @staticmethod
    def _deduplicate(projected: list[tuple[tuple, tuple]]) -> list[tuple[tuple, tuple]]:
        seen = set()
        unique = []
        for values, keys in projected:
            if values in seen:
                continue
            seen.add(values)
            unique.append((values, keys))
        return unique

    def _order(self, projected: list[tuple[tuple, tuple]]) -> list[tuple[tuple, tuple]]:
        if not self._order_fns:
            return projected
        ordered = list(projected)
        for position in range(len(self._order_fns) - 1, -1, -1):
            descending = self._order_fns[position][1]
            ordered.sort(key=lambda entry: sort_key(entry[1][position]), reverse=descending)
        return ordered


class Executor:
    """Long-lived executor owned by a :class:`repro.engine.database.Database`."""

    def __init__(self, database) -> None:
        self.database = database
        self.context = ExecutionContext(database, self)
        self._function_body_plans: dict[str, PreparedSelect] = {}
        self._plans_lock = threading.Lock()

    def execute(self, select: ast.Select, facts=None) -> QueryResult:
        prepared = self.prepare(select, None, facts=facts)
        rows = prepared.run(())
        return QueryResult(columns=prepared.output_columns, rows=rows)

    def execute_stream(self, select: ast.Select, facts=None) -> RowStream:
        """Execute a SELECT as a lazily produced :class:`RowStream`.

        Streamable shapes (see :attr:`PreparedSelect.streamable`) yield their
        first row without materializing the result; barrier shapes (grouping,
        ``ORDER BY``, ``DISTINCT``) materialize internally and replay.
        """
        prepared = self.prepare(select, None, facts=facts)
        return RowStream(columns=prepared.output_columns, rows=prepared.stream(()))

    def prepare(
        self, select: ast.Select, parent_scope: Optional[Scope], facts=None
    ) -> PreparedSelect:
        return PreparedSelect(self, select, parent_scope, facts=facts)

    def function_body_plan(self, function: Function, arg_count: int) -> PreparedSelect:
        # lock-free fast path (dict reads are atomic under the GIL), locked
        # slow path so concurrent sessions agree on one shared plan
        plan = self._function_body_plans.get(function.name.lower())
        if plan is None:
            with self._plans_lock:
                plan = self._function_body_plans.get(function.name.lower())
                if plan is None:
                    parameter_scope = Scope(
                        [(None, f"${position + 1}") for position in range(arg_count)]
                    )
                    plan = self.prepare(function.body, parameter_scope)
                    self._function_body_plans[function.name.lower()] = plan
        return plan

    def invalidate(self) -> None:
        """Drop cached plans after DDL changes the catalog."""
        with self._plans_lock:
            self._function_body_plans.clear()
