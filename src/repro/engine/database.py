"""The engine facade: a single in-memory SQL database.

A :class:`Database` plays the role of the "off-the-shelf DBMS" below the
MTBase middleware (Figure 4 of the paper).  Two back-end *profiles* mimic the
behaviours relevant to the evaluation:

* ``postgres`` — UDFs declared ``IMMUTABLE`` have their results memoized, the
  behaviour the paper exploits on PostgreSQL 9.6,
* ``system_c`` — UDF results are never cached, reproducing the commercial
  "System C" which "does not allow UDFs to be defined as deterministic".
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Optional, Union

from ..compile.cost import CostConfig
from ..compile.stats import RefreshPolicy, StatisticsCatalog, collect_table_stats
from ..errors import ExecutionError
from ..result import ExecuteResult, StatementResult
from ..sql import ast
from ..sql.parser import parse_statement, parse_statements
from .catalog import Catalog
from .config import VectorConfig
from .ddl import (
    execute_create_function,
    execute_create_table,
    execute_create_view,
    execute_drop_table,
    execute_drop_view,
)
from .dml import execute_delete, execute_insert, execute_update
from .executor import ExecutionStats, Executor, QueryResult, RowStream
from .functions import PythonFunction, SQLFunction


@dataclass(frozen=True)
class BackendProfile:
    """Execution profile of the simulated back-end DBMS."""

    name: str
    cache_immutable_functions: bool


POSTGRES_PROFILE = BackendProfile(name="postgres", cache_immutable_functions=True)
SYSTEM_C_PROFILE = BackendProfile(name="system_c", cache_immutable_functions=False)

PROFILES = {
    "postgres": POSTGRES_PROFILE,
    "system_c": SYSTEM_C_PROFILE,
}


class Database:
    """An in-memory SQL database executing the ``repro`` SQL dialect.

    Expression evaluation runs in one of two modes (chosen per statement
    preparation from :attr:`vector`): vectorized batch kernels — the default
    — or the row-at-a-time closure interpreter kept as the differential
    oracle.  ``REPRO_ENGINE_VECTORIZE`` / ``REPRO_ENGINE_BATCH`` configure
    the mode process-wide; :meth:`set_vectorize` flips it per database.
    """

    def __init__(
        self,
        profile: Union[str, BackendProfile] = POSTGRES_PROFILE,
        vector: Optional[VectorConfig] = None,
        cost: Optional[CostConfig] = None,
    ) -> None:
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]
            except KeyError as exc:
                raise ExecutionError(f"unknown back-end profile {profile!r}") from exc
        self.profile = profile
        self.vector = vector if vector is not None else VectorConfig.from_env()
        self.cost = cost if cost is not None else CostConfig.from_env()
        self.catalog = Catalog()
        self.stats = ExecutionStats()
        self.executor = Executor(self)
        # table statistics backing the cost-based planner: collected on
        # demand, refreshed per table once enough DML has accumulated
        self._statistics = StatisticsCatalog()
        self._stat_mutations: dict[str, int] = {}
        self._ttid_hints: dict[str, str] = {}
        self._refresh_policy = RefreshPolicy()
        # Serializes writers (DML is read-copy-replace on table.rows, DDL
        # mutates the catalog) so concurrent gateway sessions cannot lose
        # updates.  Readers stay lock-free: they see the old or the new rows
        # list, never a torn one.
        self._write_lock = threading.RLock()

    # -- statement execution --------------------------------------------------

    def execute(
        self, statement: Union[str, ast.Statement], facts=None
    ) -> ExecuteResult:
        """Execute one statement (SQL text or an already-parsed AST node).

        ``facts`` carries the compiler's
        :class:`~repro.compile.typecheck.SemanticFacts`; for SELECTs the
        planner uses its proven-NOT-NULL sets to pick null-check-free
        kernel variants.  Other statement types ignore it.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        self.stats.add(statements=1)
        if isinstance(statement, ast.Select):
            return self.executor.execute(statement, facts=facts)
        if isinstance(statement, ast.CreateTable):
            with self._write_lock:
                execute_create_table(self.catalog, statement)
                self.executor.invalidate()
            return StatementResult("CREATE TABLE")
        if isinstance(statement, ast.CreateView):
            with self._write_lock:
                execute_create_view(self.catalog, statement)
                self.executor.invalidate()
            return StatementResult("CREATE VIEW")
        if isinstance(statement, ast.CreateFunction):
            with self._write_lock:
                execute_create_function(self.catalog, statement)
                self.executor.invalidate()
            return StatementResult("CREATE FUNCTION")
        if isinstance(statement, ast.DropTable):
            with self._write_lock:
                execute_drop_table(self.catalog, statement)
                self._statistics.drop(statement.name)
                self._stat_mutations.pop(statement.name.lower(), None)
                self.executor.invalidate()
            return StatementResult("DROP TABLE")
        if isinstance(statement, ast.DropView):
            with self._write_lock:
                execute_drop_view(self.catalog, statement)
                self.executor.invalidate()
            return StatementResult("DROP VIEW")
        if isinstance(statement, ast.Insert):
            with self._write_lock:
                count = execute_insert(self.executor.context, statement)
                self._note_mutations(statement.table, count)
            return StatementResult("INSERT", rowcount=count)
        if isinstance(statement, ast.Update):
            with self._write_lock:
                count = execute_update(self.executor.context, statement)
                self._note_mutations(statement.table, count)
            return StatementResult("UPDATE", rowcount=count)
        if isinstance(statement, ast.Delete):
            with self._write_lock:
                count = execute_delete(self.executor.context, statement)
                self._note_mutations(statement.table, count)
            return StatementResult("DELETE", rowcount=count)
        raise ExecutionError(
            f"statement type {type(statement).__name__} is not executable by the engine"
        )

    def execute_script(self, sql: str) -> list[ExecuteResult]:
        """Execute a ``;``-separated script, returning one result per statement."""
        return [self.execute(statement) for statement in parse_statements(sql)]

    def execute_stream(
        self, statement: Union[str, ast.Select], facts=None
    ) -> RowStream:
        """Execute a SELECT as a lazily produced row stream.

        See :meth:`repro.engine.executor.Executor.execute_stream`; the
        statement counter ticks at call time, like :meth:`execute`, and
        ``facts`` selects proven kernel variants the same way.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if not isinstance(statement, ast.Select):
            raise ExecutionError("execute_stream() expects a SELECT statement")
        self.stats.add(statements=1)
        return self.executor.execute_stream(statement, facts=facts)

    def query(self, sql: Union[str, ast.Select]) -> QueryResult:
        """Execute a SELECT and return its :class:`QueryResult`."""
        result = self.execute(sql)
        if not isinstance(result, QueryResult):
            raise ExecutionError("query() expects a SELECT statement")
        return result

    # -- convenience ------------------------------------------------------------

    def register_python_function(
        self, name: str, fn: Callable[..., Any], immutable: bool = False
    ) -> PythonFunction:
        """Register a Python-backed scalar UDF."""
        function = PythonFunction(name, fn, immutable=immutable)
        with self._write_lock:
            self.catalog.register_function(function)
            self.executor.invalidate()
        return function

    def register_sql_function(
        self, name: str, body: str, immutable: bool = False
    ) -> SQLFunction:
        """Register a SQL-bodied scalar UDF (``$1`` ... ``$n`` parameters)."""
        function = SQLFunction(name, body, immutable=immutable)
        with self._write_lock:
            self.catalog.register_function(function)
            self.executor.invalidate()
        return function

    def insert_rows(self, table_name: str, rows: list[tuple]) -> int:
        """Bulk-load rows (already in schema order) into a table."""
        with self._write_lock:
            table = self.catalog.table(table_name)
            table.insert_many(rows)
            self._note_mutations(table_name, len(rows))
        return len(rows)

    def table_rowcount(self, table_name: str) -> int:
        return len(self.catalog.table(table_name).rows)

    # -- table statistics --------------------------------------------------------

    def register_partitioned_table(
        self,
        table_name: str,
        ttid_column: str,
        local_key_columns=(),
    ) -> None:
        """Record the tenant column of a partitioned table.

        Statistics collected for the table then include the per-tenant row
        histogram the cost model uses for data-set selectivities.
        """
        self._ttid_hints[table_name.lower()] = ttid_column.lower()

    def collect_statistics(self) -> StatisticsCatalog:
        """Scan every base table into fresh planner statistics."""
        with self._write_lock:
            for table in self.catalog.tables():
                self._collect_table(table)
        return self._statistics

    def statistics(self) -> StatisticsCatalog:
        """The current statistics, refreshing tables made stale by DML.

        A table recollects when it has never been scanned or when its
        accumulated mutation count crosses the :class:`RefreshPolicy`
        threshold; fresh tables are served from cache.
        """
        policy = self._refresh_policy
        for table in self.catalog.tables():
            name = table.schema.name.lower()
            if policy.is_stale(
                self._statistics.table(name), self._stat_mutations.get(name, 0)
            ):
                with self._write_lock:
                    self._collect_table(table)
        return self._statistics

    def _collect_table(self, table) -> None:
        name = table.schema.name.lower()
        self._statistics.put(
            collect_table_stats(
                name,
                [column.name for column in table.schema.columns],
                table.rows,
                ttid_column=self._ttid_hints.get(name),
            )
        )
        self._stat_mutations[name] = 0

    def _note_mutations(self, table_name: str, count: int) -> None:
        name = table_name.lower()
        self._stat_mutations[name] = self._stat_mutations.get(name, 0) + max(count, 0)

    def set_cost(self, enabled: bool) -> None:
        """Switch cost-based planning on or off for this database.

        Like :meth:`set_vectorize`, the switch takes effect on the next
        statement preparation; cached SQL-UDF body plans are dropped.
        """
        self.cost = CostConfig(
            enabled=enabled,
            prefilter_max_selectivity=self.cost.prefilter_max_selectivity,
        )
        self.executor.invalidate()

    def set_vectorize(self, enabled: bool, batch_size: Optional[int] = None) -> None:
        """Switch the execution mode (and optionally the batch size).

        Plans are prepared per statement execution, so the switch takes
        effect on the next statement; the cached SQL-UDF body plans are
        dropped because they were compiled for the previous mode.
        """
        self.vector = VectorConfig(
            enabled=enabled,
            batch_size=batch_size if batch_size is not None else self.vector.batch_size,
            typed=self.vector.typed,
        )
        self.executor.invalidate()

    def set_typed(self, enabled: bool) -> None:
        """Switch typed-column kernel specialization on or off.

        Only observable in vectorized mode (see
        :mod:`repro.engine.config`); like :meth:`set_vectorize` it takes
        effect on the next statement preparation and drops cached SQL-UDF
        body plans, which embedded the previous setting in their kernels.
        """
        self.vector = VectorConfig(
            enabled=self.vector.enabled,
            batch_size=self.vector.batch_size,
            typed=enabled,
        )
        self.executor.invalidate()

    def reset_stats(self) -> None:
        self.stats.reset()
        for name in self.catalog.function_names():
            self.catalog.function(name).reset_stats()

    def clear_function_caches(self) -> None:
        for name in self.catalog.function_names():
            self.catalog.function(name).clear_cache()

    # -- integrity checking ------------------------------------------------------

    def check_integrity(self) -> list[str]:
        """Validate primary-key uniqueness and foreign-key references.

        Returns a list of human-readable violation messages (empty = clean).
        NOT NULL is already enforced on insert.
        """
        violations: list[str] = []
        for table in self.catalog.tables():
            primary_key = table.schema.primary_key
            if primary_key:
                indexes = [table.schema.column_index(column) for column in primary_key]
                seen: set[tuple] = set()
                for row in table.rows:
                    key = tuple(row[index] for index in indexes)
                    if key in seen:
                        violations.append(
                            f"duplicate primary key {key!r} in table {table.schema.name}"
                        )
                    seen.add(key)
        for foreign_key in self.catalog.foreign_keys():
            if not self.catalog.has_table(foreign_key.ref_table):
                violations.append(
                    f"foreign key {foreign_key.name or ''} references missing table "
                    f"{foreign_key.ref_table}"
                )
                continue
            child = self.catalog.table(foreign_key.table)
            parent = self.catalog.table(foreign_key.ref_table)
            child_indexes = [child.schema.column_index(column) for column in foreign_key.columns]
            parent_indexes = [
                parent.schema.column_index(column) for column in foreign_key.ref_columns
            ]
            parent_keys = {
                tuple(row[index] for index in parent_indexes) for row in parent.rows
            }
            for row in child.rows:
                key = tuple(row[index] for index in child_indexes)
                if any(value is None for value in key):
                    continue
                if key not in parent_keys:
                    violations.append(
                        f"foreign key violation in {child.schema.name}: {key!r} not in "
                        f"{parent.schema.name}"
                    )
                    break
        return violations
