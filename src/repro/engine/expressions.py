"""Expression binding and evaluation.

Expressions are *compiled* once per statement into Python closures operating
on row tuples.  Column references are resolved to slot indexes at compile
time, which keeps per-row evaluation cheap — important because the canonical
MTSQL rewrite calls conversion UDFs for every processed record, and the
benchmark executes millions of such evaluations.

Compiled closures have the signature ``fn(row, outers)`` where ``row`` is the
current relation's row tuple and ``outers`` is a tuple of ancestor rows
(immediate parent first) used by correlated sub-queries.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Optional, Sequence

from ..errors import ExecutionError, FunctionError
from ..sql import ast
from ..sql.transform import walk_expression
from ..sql.types import (
    Date,
    Interval,
    add_date_interval,
    sql_compare,
    sql_equal,
)

CompiledExpr = Callable[[tuple, tuple], Any]


class Scope:
    """A name-resolution scope: an ordered list of ``(binding, column)`` pairs.

    ``binding`` is the FROM-clause alias (or table name) the column belongs
    to, or ``None`` for synthetic columns (group keys, UDF parameters).
    Scopes chain through ``parent`` for correlated sub-queries.

    ``proven`` holds the slot indexes the static analyzer proved NOT NULL
    (see :mod:`repro.compile.typecheck`); batch compilers use it to pick
    null-check-free kernel variants.
    """

    def __init__(
        self,
        columns: Sequence[tuple[Optional[str], str]],
        parent: Optional["Scope"] = None,
        proven: frozenset = frozenset(),
    ) -> None:
        self.columns = [
            ((binding.lower() if binding else None), column.lower())
            for binding, column in columns
        ]
        self.parent = parent
        self.proven = proven
        self.uses_parent = False
        self._by_column: dict[str, list[int]] = {}
        self._by_qualified: dict[tuple[str, str], int] = {}
        for index, (binding, column) in enumerate(self.columns):
            self._by_column.setdefault(column, []).append(index)
            if binding is not None:
                self._by_qualified[(binding, column)] = index

    def resolve_local(self, name: str, table: Optional[str]) -> Optional[int]:
        """Resolve within this scope only; None when the column is unknown."""
        column = name.lower()
        if table is not None:
            return self._by_qualified.get((table.lower(), column))
        candidates = self._by_column.get(column)
        if not candidates:
            return None
        if len(candidates) > 1:
            owners = ", ".join(
                self.columns[index][0] or "<anonymous>" for index in candidates
            )
            raise ExecutionError(
                f"ambiguous column reference {name!r}: matches bindings {owners}"
            )
        return candidates[0]

    def resolve(self, name: str, table: Optional[str]) -> Optional[tuple[int, int]]:
        """Resolve across the scope chain.

        Returns ``(depth, index)`` with depth 0 for the local scope, or
        ``None`` when the column cannot be found anywhere.  Crossing into an
        ancestor scope marks every crossed scope as correlated.
        """
        depth = 0
        scope: Optional[Scope] = self
        crossed: list[Scope] = []
        while scope is not None:
            index = scope.resolve_local(name, table)
            if index is not None:
                for inner in crossed:
                    inner.uses_parent = True
                return depth, index
            crossed.append(scope)
            scope = scope.parent
            depth += 1
        return None


class ExpressionCompiler:
    """Compiles AST expressions against a scope into evaluation closures."""

    def __init__(self, scope: Scope, context) -> None:
        self.scope = scope
        self.context = context

    # -- public API ---------------------------------------------------------

    def compile(self, expr: ast.Expression) -> CompiledExpr:
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(f"cannot evaluate expression of type {type(expr).__name__}")
        return method(expr)

    def compile_predicate(self, expr: ast.Expression) -> CompiledExpr:
        """Compile a predicate; callers treat NULL as false."""
        return self.compile(expr)

    # -- leaves -------------------------------------------------------------

    def _compile_literal(self, expr: ast.Literal) -> CompiledExpr:
        value = expr.value
        return lambda row, outers: value

    def _compile_column(self, expr: ast.Column) -> CompiledExpr:
        resolved = self.scope.resolve(expr.name, expr.table)
        if resolved is None:
            raise ExecutionError(f"unknown column {expr.qualified!r}")
        depth, index = resolved
        if depth == 0:
            return lambda row, outers: row[index]
        outer_index = depth - 1
        return lambda row, outers: outers[outer_index][index]

    def _compile_star(self, expr: ast.Star) -> CompiledExpr:
        raise ExecutionError("'*' is only valid in SELECT lists and COUNT(*)")

    def _compile_parameter(self, expr: ast.Parameter) -> CompiledExpr:
        # parameters are bound (substituted as literals) before statements
        # reach the engine; hitting one here means nobody supplied values
        name = f":{expr.name}" if expr.name else f"?{expr.index}"
        raise ExecutionError(
            f"statement has an unbound parameter {name}; supply values via "
            f"execute(..., parameters=...) or the repro.api cursor"
        )

    # -- operators ----------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> CompiledExpr:
        operator = expr.op.upper()
        if operator == "AND":
            left, right = self.compile(expr.left), self.compile(expr.right)
            return lambda row, outers: _logical_and(left(row, outers), right(row, outers))
        if operator == "OR":
            left, right = self.compile(expr.left), self.compile(expr.right)
            return lambda row, outers: _logical_or(left(row, outers), right(row, outers))
        left, right = self.compile(expr.left), self.compile(expr.right)
        if operator == "=":
            return lambda row, outers: sql_equal(left(row, outers), right(row, outers))
        if operator == "<>":
            return lambda row, outers: _not_null_aware(sql_equal(left(row, outers), right(row, outers)))
        if operator in ("<", "<=", ">", ">="):
            return _make_comparison(left, right, operator)
        if operator in ("+", "-", "*", "/"):
            return _make_arithmetic(left, right, operator)
        if operator == "||":
            return lambda row, outers: _concat(left(row, outers), right(row, outers))
        if operator == "%":
            return lambda row, outers: _modulo(left(row, outers), right(row, outers))
        raise ExecutionError(f"unsupported operator {expr.op!r}")

    def _compile_unaryop(self, expr: ast.UnaryOp) -> CompiledExpr:
        operand = self.compile(expr.operand)
        if expr.op.upper() == "NOT":
            return lambda row, outers: _not_null_aware(operand(row, outers))
        if expr.op == "-":
            return lambda row, outers: _negate(operand(row, outers))
        raise ExecutionError(f"unsupported unary operator {expr.op!r}")

    def _compile_case(self, expr: ast.Case) -> CompiledExpr:
        compiled_whens = [
            (self.compile(when.condition), self.compile(when.result)) for when in expr.whens
        ]
        compiled_else = self.compile(expr.else_result) if expr.else_result is not None else None

        def evaluate(row: tuple, outers: tuple) -> Any:
            for condition, result in compiled_whens:
                if condition(row, outers) is True:
                    return result(row, outers)
            if compiled_else is not None:
                return compiled_else(row, outers)
            return None

        return evaluate

    def _compile_inlist(self, expr: ast.InList) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        item_fns = [self.compile(item) for item in expr.items]
        negated = expr.negated

        def evaluate(row: tuple, outers: tuple) -> Optional[bool]:
            value = value_fn(row, outers)
            if value is None:
                return None
            saw_null = False
            for item_fn in item_fns:
                item = item_fn(row, outers)
                if item is None:
                    saw_null = True
                    continue
                if sql_equal(value, item) is True:
                    return not negated if not negated else False
            if saw_null:
                return None
            return negated

        return evaluate

    def _compile_between(self, expr: ast.Between) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        low_fn = self.compile(expr.low)
        high_fn = self.compile(expr.high)
        negated = expr.negated

        def evaluate(row: tuple, outers: tuple) -> Optional[bool]:
            value = value_fn(row, outers)
            low = low_fn(row, outers)
            high = high_fn(row, outers)
            if value is None or low is None or high is None:
                return None
            result = sql_compare(value, low) >= 0 and sql_compare(value, high) <= 0
            return (not result) if negated else result

        return evaluate

    def _compile_like(self, expr: ast.Like) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
            regex = _like_regex(expr.pattern.value)

            def evaluate_static(row: tuple, outers: tuple) -> Optional[bool]:
                value = value_fn(row, outers)
                if value is None:
                    return None
                matched = regex.match(str(value)) is not None
                return (not matched) if negated else matched

            return evaluate_static

        pattern_fn = self.compile(expr.pattern)

        def evaluate(row: tuple, outers: tuple) -> Optional[bool]:
            value = value_fn(row, outers)
            pattern = pattern_fn(row, outers)
            if value is None or pattern is None:
                return None
            matched = _like_regex(str(pattern)).match(str(value)) is not None
            return (not matched) if negated else matched

        return evaluate

    def _compile_isnull(self, expr: ast.IsNull) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        negated = expr.negated
        return lambda row, outers: (value_fn(row, outers) is not None) if negated else (
            value_fn(row, outers) is None
        )

    def _compile_extract(self, expr: ast.Extract) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        part = expr.part.upper()

        def evaluate(row: tuple, outers: tuple) -> Optional[int]:
            value = value_fn(row, outers)
            if value is None:
                return None
            date = value if isinstance(value, Date) else Date.from_string(str(value))
            if part == "YEAR":
                return date.year
            if part == "MONTH":
                return date.month
            if part == "DAY":
                return date.day
            raise ExecutionError(f"unsupported EXTRACT part {part!r}")

        return evaluate

    def _compile_substring(self, expr: ast.Substring) -> CompiledExpr:
        value_fn = self.compile(expr.expr)
        start_fn = self.compile(expr.start)
        length_fn = self.compile(expr.length) if expr.length is not None else None

        def evaluate(row: tuple, outers: tuple) -> Optional[str]:
            value = value_fn(row, outers)
            start = start_fn(row, outers)
            if value is None or start is None:
                return None
            text = str(value)
            begin = max(int(start) - 1, 0)
            if length_fn is None:
                return text[begin:]
            length = length_fn(row, outers)
            if length is None:
                return None
            return text[begin: begin + int(length)]

        return evaluate

    # -- function calls -----------------------------------------------------

    def _compile_functioncall(self, expr: ast.FunctionCall) -> CompiledExpr:
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name!r} is not allowed in this context"
            )
        arg_fns = [self.compile(argument) for argument in expr.args]
        context = self.context
        name = expr.name

        def evaluate(row: tuple, outers: tuple) -> Any:
            args = [fn(row, outers) for fn in arg_fns]
            return context.call_function(name, args)

        return evaluate

    # -- sub-queries ---------------------------------------------------------

    def _compile_scalarsubquery(self, expr: ast.ScalarSubquery) -> CompiledExpr:
        prepared = self.context.prepare_subquery(expr.query, self.scope)

        def evaluate(row: tuple, outers: tuple) -> Any:
            rows = prepared.run((row,) + outers)
            if not rows:
                return None
            if len(rows[0]) != 1:
                raise ExecutionError("scalar sub-query must return a single column")
            return rows[0][0]

        return evaluate

    def _compile_insubquery(self, expr: ast.InSubquery) -> CompiledExpr:
        prepared = self.context.prepare_subquery(expr.query, self.scope)
        value_fn = self.compile(expr.expr)
        negated = expr.negated

        def evaluate(row: tuple, outers: tuple) -> Optional[bool]:
            value = value_fn(row, outers)
            if value is None:
                return None
            members = prepared.run_value_set((row,) + outers)
            if value in members.values:
                return not negated
            if members.has_null:
                return None
            return negated

        return evaluate

    def _compile_exists(self, expr: ast.Exists) -> CompiledExpr:
        prepared = self.context.prepare_subquery(expr.query, self.scope)
        negated = expr.negated

        def evaluate(row: tuple, outers: tuple) -> bool:
            found = bool(prepared.run((row,) + outers, limit=1))
            return (not found) if negated else found

        return evaluate


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _logical_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _logical_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _not_null_aware(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


def _make_comparison(left: CompiledExpr, right: CompiledExpr, operator: str) -> CompiledExpr:
    if operator == "<":
        test = lambda ordering: ordering < 0  # noqa: E731
    elif operator == "<=":
        test = lambda ordering: ordering <= 0  # noqa: E731
    elif operator == ">":
        test = lambda ordering: ordering > 0  # noqa: E731
    else:
        test = lambda ordering: ordering >= 0  # noqa: E731

    def evaluate(row: tuple, outers: tuple) -> Optional[bool]:
        ordering = sql_compare(left(row, outers), right(row, outers))
        if ordering is None:
            return None
        return test(ordering)

    return evaluate


def _make_arithmetic(left: CompiledExpr, right: CompiledExpr, operator: str) -> CompiledExpr:
    def evaluate(row: tuple, outers: tuple) -> Any:
        left_value = left(row, outers)
        right_value = right(row, outers)
        if left_value is None or right_value is None:
            return None
        if isinstance(left_value, Date) or isinstance(right_value, Date):
            return _date_arithmetic(left_value, right_value, operator)
        if operator == "+":
            return left_value + right_value
        if operator == "-":
            return left_value - right_value
        if operator == "*":
            return left_value * right_value
        if right_value == 0:
            raise ExecutionError("division by zero")
        return left_value / right_value

    return evaluate


def _date_arithmetic(left: Any, right: Any, operator: str) -> Any:
    if isinstance(left, Date) and isinstance(right, Interval):
        if operator == "+":
            return add_date_interval(left, right, 1)
        if operator == "-":
            return add_date_interval(left, right, -1)
    if isinstance(left, Interval) and isinstance(right, Date) and operator == "+":
        return add_date_interval(right, left, 1)
    if isinstance(left, Date) and isinstance(right, Date) and operator == "-":
        return left.days - right.days
    if isinstance(left, Date) and isinstance(right, (int, float)):
        if operator == "+":
            return left.add_days(int(right))
        if operator == "-":
            return left.add_days(-int(right))
    raise ExecutionError(f"unsupported date arithmetic: {type(left).__name__} {operator} {type(right).__name__}")


def _concat(left: Any, right: Any) -> Optional[str]:
    if left is None or right is None:
        return None
    return str(left) + str(right)


def _modulo(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    return left % right


def _negate(value: Any) -> Any:
    if value is None:
        return None
    return -value


_LIKE_CACHE: dict[str, "re.Pattern[str]"] = {}


def _like_regex(pattern: str) -> "re.Pattern[str]":
    cached = _LIKE_CACHE.get(pattern)
    if cached is not None:
        return cached
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    compiled = re.compile("".join(parts) + r"\Z", re.DOTALL)
    _LIKE_CACHE[pattern] = compiled
    return compiled


# ---------------------------------------------------------------------------
# analysis helpers used by the planner and the MTSQL rewriter
# ---------------------------------------------------------------------------


def contains_subquery(expr: Optional[ast.Expression]) -> bool:
    """True when the expression contains any sub-query node."""
    for node in walk_expression(expr):
        if isinstance(node, (ast.ScalarSubquery, ast.InSubquery, ast.Exists)):
            return True
    return False


def referenced_columns(expr: Optional[ast.Expression]) -> list[ast.Column]:
    """All column references in an expression (sub-queries excluded)."""
    return [node for node in walk_expression(expr) if isinstance(node, ast.Column)]


def find_aggregates(expr: Optional[ast.Expression]) -> list[ast.FunctionCall]:
    """All aggregate calls in an expression (sub-queries excluded)."""
    return [
        node
        for node in walk_expression(expr)
        if isinstance(node, ast.FunctionCall) and node.is_aggregate
    ]
