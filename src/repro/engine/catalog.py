"""The engine catalog: tables, views and user-defined functions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import CatalogError
from ..sql import ast
from .storage import ForeignKey, Table, TableSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .functions import Function


class Catalog:
    """Case-insensitive registry of tables, views, constraints and functions."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._views: dict[str, ast.Select] = {}
        self._view_names: dict[str, str] = {}
        self._functions: dict[str, "Function"] = {}
        self._foreign_keys: list[ForeignKey] = []

    # -- tables -------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.key
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._foreign_keys = [fk for fk in self._foreign_keys if fk.table.lower() != key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {name!r} does not exist") from exc

    def tables(self) -> list[Table]:
        return list(self._tables.values())

    def table_names(self) -> list[str]:
        return [table.schema.name for table in self._tables.values()]

    # -- views --------------------------------------------------------------

    def create_view(self, name: str, query: ast.Select) -> None:
        key = name.lower()
        if key in self._tables or key in self._views:
            raise CatalogError(f"relation {name!r} already exists")
        self._views[key] = query
        self._view_names[key] = name

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"view {name!r} does not exist")
        del self._views[key]
        del self._view_names[key]

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view(self, name: str) -> ast.Select:
        try:
            return self._views[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"view {name!r} does not exist") from exc

    def view_names(self) -> list[str]:
        return list(self._view_names.values())

    # -- functions ------------------------------------------------------------

    def register_function(self, function: "Function") -> None:
        self._functions[function.name.lower()] = function

    def has_function(self, name: str) -> bool:
        return name.lower() in self._functions

    def function(self, name: str) -> "Function":
        try:
            return self._functions[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"function {name!r} is not defined") from exc

    def function_names(self) -> list[str]:
        return [function.name for function in self._functions.values()]

    # -- constraints ----------------------------------------------------------

    def add_foreign_key(self, foreign_key: ForeignKey) -> None:
        self._foreign_keys.append(foreign_key)

    def foreign_keys(self, table: Optional[str] = None) -> list[ForeignKey]:
        if table is None:
            return list(self._foreign_keys)
        key = table.lower()
        return [fk for fk in self._foreign_keys if fk.table.lower() == key]
