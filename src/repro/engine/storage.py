"""In-memory storage: column descriptors, tables and rows.

Rows are plain tuples; a :class:`Table` pairs a :class:`TableSchema` with a
list of rows.  All identifier matching in the engine is case-insensitive, so
schemas normalize names to lower case while remembering the original spelling
for display purposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..errors import CatalogError, ConstraintViolation
from ..sql.types import SQLType
from .columns import TypedColumn, build_typed_column


@dataclass
class ColumnSchema:
    """Schema entry for a single column."""

    name: str
    sql_type: SQLType
    not_null: bool = False
    default: Any = None

    @property
    def key(self) -> str:
        return self.name.lower()


@dataclass
class TableSchema:
    """Ordered collection of column schemas plus declared constraints."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self._index = {column.key: position for position, column in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise CatalogError(f"duplicate column in table {self.name!r}")

    @property
    def key(self) -> str:
        return self.name.lower()

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        try:
            return self._index[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def column(self, name: str) -> ColumnSchema:
        return self.columns[self.column_index(name)]

    def add_column(self, column: ColumnSchema) -> None:
        if column.key in self._index:
            raise CatalogError(f"duplicate column {column.name!r} in table {self.name!r}")
        self._index[column.key] = len(self.columns)
        self.columns.append(column)


class Table:
    """A heap of rows with schema-aware insertion."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self.rows: list[tuple] = []
        #: bumped on every mutation; planners use it to invalidate hash
        #: indexes, and column_array() to invalidate cached column slices
        self.version = 0
        self._column_cache: dict[int, list] = {}
        self._column_cache_version = -1
        self._typed_cache: dict[int, Optional[TypedColumn]] = {}
        self._typed_cache_version = -1

    def __len__(self) -> int:
        return len(self.rows)

    def column_array(self, index: int) -> list:
        """The full column at ``index`` as a list, cached per table version.

        The vectorized executor reads table data column-wise; gathering a
        column once per mutation epoch (instead of once per query) makes
        repeated scans of a stable table allocation-free.  Any mutation bumps
        ``version`` and the next call rebuilds the requested column.
        """
        if self._column_cache_version != self.version:
            self._column_cache = {}
            self._column_cache_version = self.version
        column = self._column_cache.get(index)
        if column is None:
            column = [row[index] for row in self.rows]
            self._column_cache[index] = column
        return column

    def typed_column(self, index: int) -> Optional[TypedColumn]:
        """The typed payload for column ``index``, cached per table version.

        Returns ``None`` when the column is not provably type-stable (see
        :func:`repro.engine.columns.build_typed_column`); the refusal is
        cached too, so an unstable column costs one scan per mutation epoch
        rather than one per query.
        """
        if self._typed_cache_version != self.version:
            self._typed_cache = {}
            self._typed_cache_version = self.version
        if index in self._typed_cache:
            return self._typed_cache[index]
        typed = build_typed_column(self.schema.columns[index].sql_type, self.column_array(index))
        self._typed_cache[index] = typed
        return typed

    def insert_row(self, values: Sequence[Any]) -> None:
        """Insert a full row (values in schema column order)."""
        if len(values) != len(self.schema.columns):
            raise ConstraintViolation(
                f"table {self.schema.name!r} expects {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        row = tuple(values)
        self._check_not_null(row)
        self.rows.append(row)
        self.version += 1

    def insert_named(self, names: Sequence[str], values: Sequence[Any]) -> None:
        """Insert a row given a subset of columns; missing columns get defaults."""
        if len(names) != len(values):
            raise ConstraintViolation("column list and value list differ in length")
        provided = {name.lower(): value for name, value in zip(names, values)}
        row = []
        for column in self.schema.columns:
            if column.key in provided:
                row.append(provided[column.key])
            else:
                row.append(column.default)
        self.insert_row(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        for row in rows:
            self.insert_row(row)

    def _check_not_null(self, row: tuple) -> None:
        for column, value in zip(self.schema.columns, row):
            if column.not_null and value is None:
                raise ConstraintViolation(
                    f"column {column.name!r} of table {self.schema.name!r} is NOT NULL"
                )

    def truncate(self) -> None:
        self.rows.clear()
        self.version += 1


@dataclass
class ForeignKey:
    """A declared (possibly MT-global) referential integrity constraint."""

    name: Optional[str]
    table: str
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]
