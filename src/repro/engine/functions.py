"""Scalar functions, aggregates and user-defined functions (UDFs).

Two UDF flavours exist, mirroring what MTBase deploys on the DBMS:

* :class:`SQLFunction` — a function whose body is a SQL query with ``$1`` ...
  ``$n`` parameters (the paper's Listings 4-7 define conversion functions this
  way).  The body is parsed once and executed by the engine on every call.
* :class:`PythonFunction` — a thin wrapper around a Python callable, used by
  the test-suite and by conversion pairs whose semantics are easier to state
  directly in Python.

A function flagged ``immutable`` may have its results memoized.  Whether the
engine actually does so is a property of the back-end profile
(:class:`repro.engine.database.BackendProfile`): the PostgreSQL-like profile
caches, the System-C-like profile does not — this asymmetry drives the
appendix experiments of the paper.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..errors import FunctionError
from ..sql import ast
from ..sql.parser import parse_query
from ..sql.types import Date


# ---------------------------------------------------------------------------
# User-defined functions
# ---------------------------------------------------------------------------


@dataclass
class FunctionStats:
    """Per-function call counters, exposed for tests and benchmark reporting."""

    calls: int = 0
    cache_hits: int = 0
    executions: int = 0


class Function:
    """Base class for scalar UDFs registered in the catalog."""

    def __init__(self, name: str, immutable: bool = False) -> None:
        self.name = name
        self.immutable = immutable
        self.stats = FunctionStats()
        self._cache: dict[tuple, Any] = {}
        # memo cache and stats are shared across the gateway's worker threads
        self._lock = threading.Lock()

    def invoke(self, args: Sequence[Any], context, use_cache: bool) -> tuple[Any, int]:
        """Call the function, optionally memoizing immutable results.

        Returns ``(value, executed)`` where ``executed`` is 1 when the body
        actually ran and 0 on a memo hit, so the caller can account cache
        hits without re-reading (racy under concurrency) stats counters.
        The body runs outside the lock: two threads missing the same key do
        the work twice, but never corrupt the cache or block each other.
        """
        key: tuple | None = None
        if use_cache and self.immutable:
            try:
                key = tuple(args)
            except TypeError:  # pragma: no cover - defensive
                key = None
        if key is not None:
            with self._lock:
                self.stats.calls += 1
                if key in self._cache:
                    self.stats.cache_hits += 1
                    return self._cache[key], 0
            value = self._execute(args, context)
            with self._lock:
                self.stats.executions += 1
                self._cache[key] = value
            return value, 1
        with self._lock:
            self.stats.calls += 1
            self.stats.executions += 1
        return self._execute(args, context), 1

    def add_memo_hits(self, count: int) -> None:
        """Account ``count`` memo hits in one lock acquisition.

        The vectorized executor deduplicates ``(function, args)`` keys inside
        a batch and calls :meth:`invoke` once per *distinct* key; the
        duplicate occurrences are still calls-that-hit-the-memo as far as the
        paper's UDF-cache ablation is concerned, so they are bulk-counted
        here to keep the counters identical to row-at-a-time execution.
        """
        if count <= 0:
            return
        with self._lock:
            self.stats.calls += count
            self.stats.cache_hits += count

    def _execute(self, args: Sequence[Any], context) -> Any:
        raise NotImplementedError

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = FunctionStats()


class PythonFunction(Function):
    """A UDF backed by a Python callable."""

    def __init__(self, name: str, fn: Callable[..., Any], immutable: bool = False) -> None:
        super().__init__(name, immutable=immutable)
        self._fn = fn

    def _execute(self, args: Sequence[Any], context) -> Any:
        return self._fn(*args)


class SQLFunction(Function):
    """A UDF whose body is a SQL query with ``$n`` positional parameters."""

    def __init__(
        self,
        name: str,
        body: str,
        arg_types: tuple[str, ...] = (),
        return_type: str = "",
        immutable: bool = False,
    ) -> None:
        super().__init__(name, immutable=immutable)
        self.body_text = body
        self.arg_types = arg_types
        self.return_type = return_type
        self.body: ast.Select = parse_query(body)

    def _execute(self, args: Sequence[Any], context) -> Any:
        if context is None:
            raise FunctionError(
                f"SQL function {self.name!r} needs an execution context"
            )
        return context.run_function_body(self, args)


# ---------------------------------------------------------------------------
# Built-in scalar functions
# ---------------------------------------------------------------------------


def _fn_concat(*args: Any) -> Optional[str]:
    if any(argument is None for argument in args):
        return None
    return "".join(str(argument) for argument in args)


def _fn_char_length(value: Any) -> Optional[int]:
    if value is None:
        return None
    return len(str(value))


def _fn_abs(value: Any) -> Any:
    if value is None:
        return None
    return abs(value)


def _fn_round(value: Any, digits: Any = 0) -> Any:
    if value is None:
        return None
    return round(value, int(digits or 0))


def _fn_floor(value: Any) -> Any:
    if value is None:
        return None
    return math.floor(value)


def _fn_ceil(value: Any) -> Any:
    if value is None:
        return None
    return math.ceil(value)


def _fn_upper(value: Any) -> Optional[str]:
    if value is None:
        return None
    return str(value).upper()


def _fn_lower(value: Any) -> Optional[str]:
    if value is None:
        return None
    return str(value).lower()


def _fn_coalesce(*args: Any) -> Any:
    for argument in args:
        if argument is not None:
            return argument
    return None


def _fn_mod(left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    return left % right


def _fn_year(value: Any) -> Optional[int]:
    if value is None:
        return None
    if isinstance(value, Date):
        return value.year
    return Date.from_string(str(value)).year


BUILTIN_SCALARS: dict[str, Callable[..., Any]] = {
    "concat": _fn_concat,
    "char_length": _fn_char_length,
    "length": _fn_char_length,
    "abs": _fn_abs,
    "round": _fn_round,
    "floor": _fn_floor,
    "ceil": _fn_ceil,
    "ceiling": _fn_ceil,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "coalesce": _fn_coalesce,
    "mod": _fn_mod,
    "year": _fn_year,
}


# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------


class Aggregate:
    """Streaming accumulator interface for SQL aggregate functions.

    :meth:`add_many` is the vectorized entry point: one call folds a whole
    column into the accumulator; :meth:`add_indexed` folds the positions of
    a group-index array without materializing the gathered slice (the
    grouped-aggregation hot path over typed columns).  Every override
    applies values in column order with the exact per-element arithmetic of
    :meth:`add` — in particular floats accumulate by the same sequence of
    binary additions — so batch and row execution produce bit-identical
    results.
    """

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def add_many(self, values: Sequence[Any]) -> None:
        """Fold a column of values into the accumulator (batch hot path)."""
        for value in values:
            self.add(value)

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        """Fold ``values[i] for i in indices`` (ascending group positions)."""
        add = self.add
        for i in indices:
            add(values[i])

    def result(self) -> Any:
        raise NotImplementedError


class CountAggregate(Aggregate):
    def __init__(self, count_star: bool = False) -> None:
        self._count = 0
        self._count_star = count_star

    def add(self, value: Any) -> None:
        if self._count_star or value is not None:
            self._count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        if self._count_star:
            self._count += len(values)
            return
        self._count += sum(1 for value in values if value is not None)

    def add_count(self, count: int) -> None:
        """Count ``count`` rows at once (COUNT(*) over a batch needs no column)."""
        self._count += count

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        if self._count_star:
            self._count += len(indices)
            return
        self._count += sum(1 for i in indices if values[i] is not None)

    def result(self) -> int:
        return self._count


class SumAggregate(Aggregate):
    def __init__(self) -> None:
        self._total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total = value if self._total is None else self._total + value

    def add_many(self, values: Sequence[Any]) -> None:
        total = self._total
        for value in values:
            if value is not None:
                total = value if total is None else total + value
        self._total = total

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        total = self._total
        for i in indices:
            value = values[i]
            if value is not None:
                total = value if total is None else total + value
        self._total = total

    def result(self) -> Any:
        return self._total


class AvgAggregate(Aggregate):
    def __init__(self) -> None:
        self._total = 0.0
        self._count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._total += value
        self._count += 1

    def add_many(self, values: Sequence[Any]) -> None:
        total = self._total
        count = self._count
        for value in values:
            if value is not None:
                total += value
                count += 1
        self._total = total
        self._count = count

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        total = self._total
        count = self._count
        for i in indices:
            value = values[i]
            if value is not None:
                total += value
                count += 1
        self._total = total
        self._count = count

    def result(self) -> Any:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAggregate(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value < self._value:
            self._value = value

    def add_many(self, values: Sequence[Any]) -> None:
        best = self._value
        for value in values:
            if value is not None and (best is None or value < best):
                best = value
        self._value = best

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        best = self._value
        for i in indices:
            value = values[i]
            if value is not None and (best is None or value < best):
                best = value
        self._value = best

    def result(self) -> Any:
        return self._value


class MaxAggregate(Aggregate):
    def __init__(self) -> None:
        self._value: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._value is None or value > self._value:
            self._value = value

    def add_many(self, values: Sequence[Any]) -> None:
        best = self._value
        for value in values:
            if value is not None and (best is None or value > best):
                best = value
        self._value = best

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        best = self._value
        for i in indices:
            value = values[i]
            if value is not None and (best is None or value > best):
                best = value
        self._value = best

    def result(self) -> Any:
        return self._value


class DistinctAggregate(Aggregate):
    """Wraps another aggregate, feeding it each distinct value exactly once."""

    def __init__(self, inner: Aggregate) -> None:
        self._inner = inner
        self._seen: set = set()

    def add(self, value: Any) -> None:
        if value is None:
            self._inner.add(value)
            return
        if value in self._seen:
            return
        self._seen.add(value)
        self._inner.add(value)

    def add_many(self, values: Sequence[Any]) -> None:
        seen = self._seen
        inner_add = self._inner.add
        for value in values:
            if value is None:
                inner_add(value)
            elif value not in seen:
                seen.add(value)
                inner_add(value)

    def add_indexed(self, values: Sequence[Any], indices: Sequence[int]) -> None:
        seen = self._seen
        inner_add = self._inner.add
        for i in indices:
            value = values[i]
            if value is None:
                inner_add(value)
            elif value not in seen:
                seen.add(value)
                inner_add(value)

    def result(self) -> Any:
        return self._inner.result()


def make_aggregate(call: ast.FunctionCall) -> Aggregate:
    """Build the accumulator matching an aggregate FunctionCall node."""
    name = call.name.upper()
    if name == "COUNT":
        count_star = len(call.args) == 1 and isinstance(call.args[0], ast.Star)
        base: Aggregate = CountAggregate(count_star=count_star)
    elif name == "SUM":
        base = SumAggregate()
    elif name == "AVG":
        base = AvgAggregate()
    elif name == "MIN":
        base = MinAggregate()
    elif name == "MAX":
        base = MaxAggregate()
    else:
        raise FunctionError(f"unknown aggregate function {call.name!r}")
    if call.distinct:
        return DistinctAggregate(base)
    return base
