"""In-memory SQL engine: storage, planner, executor and the Database facade."""

from .catalog import Catalog
from .database import (
    POSTGRES_PROFILE,
    PROFILES,
    SYSTEM_C_PROFILE,
    BackendProfile,
    Database,
    StatementResult,
)
from .config import DEFAULT_BATCH_SIZE, VectorConfig
from .executor import ExecutionStats, QueryResult
from .functions import PythonFunction, SQLFunction
from .storage import ColumnSchema, Table, TableSchema
from .vector import BatchExpressionCompiler, RowBatch

__all__ = [
    "BatchExpressionCompiler",
    "DEFAULT_BATCH_SIZE",
    "RowBatch",
    "VectorConfig",
    "Catalog",
    "Database",
    "BackendProfile",
    "StatementResult",
    "POSTGRES_PROFILE",
    "SYSTEM_C_PROFILE",
    "PROFILES",
    "ExecutionStats",
    "QueryResult",
    "PythonFunction",
    "SQLFunction",
    "ColumnSchema",
    "Table",
    "TableSchema",
]
