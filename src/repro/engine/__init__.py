"""In-memory SQL engine: storage, planner, executor and the Database facade."""

from .catalog import Catalog
from .database import (
    POSTGRES_PROFILE,
    PROFILES,
    SYSTEM_C_PROFILE,
    BackendProfile,
    Database,
    StatementResult,
)
from .executor import ExecutionStats, QueryResult
from .functions import PythonFunction, SQLFunction
from .storage import ColumnSchema, Table, TableSchema

__all__ = [
    "Catalog",
    "Database",
    "BackendProfile",
    "StatementResult",
    "POSTGRES_PROFILE",
    "SYSTEM_C_PROFILE",
    "PROFILES",
    "ExecutionStats",
    "QueryResult",
    "PythonFunction",
    "SQLFunction",
    "ColumnSchema",
    "Table",
    "TableSchema",
]
