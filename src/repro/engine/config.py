"""Engine execution configuration: the vectorization knobs.

The engine can evaluate expressions in two modes:

* **vectorized** (the default) — expression trees are compiled once per plan
  into *batch kernels* operating on column arrays; scans, filters, joins,
  projections and aggregation process :class:`~repro.engine.vector.RowBatch`
  windows of ``batch_size`` rows at a time,
* **row-at-a-time** — the original per-row closure interpreter, kept as the
  differential oracle (``REPRO_ENGINE_VECTORIZE=0``).

Deployments configure through environment variables with the same strictness
as the ``REPRO_SERVER_*`` / ``REPRO_BENCH_*`` families: a malformed value
raises :class:`~repro.errors.ConfigurationError` instead of being silently
replaced by a default, because a typo in a batch size must not quietly run
the engine in the wrong mode.

+----------------------------+---------------------------------------------+
| variable                   | meaning                                     |
+============================+=============================================+
| ``REPRO_ENGINE_VECTORIZE`` | ``1`` = batch kernels (default), ``0`` =    |
|                            | row-at-a-time oracle                        |
| ``REPRO_ENGINE_BATCH``     | rows per batch (default 1024, minimum 1)    |
+----------------------------+---------------------------------------------+
| ``REPRO_ENGINE_TYPED``     | ``1`` = typed-column kernel specialization  |
|                            | (default), ``0`` = generic kernels only     |
+----------------------------+---------------------------------------------+

``REPRO_ENGINE_TYPED`` only matters in vectorized mode: it gates whether
batch kernels may specialize over :class:`~repro.engine.columns.TypedColumn`
payloads where a base-table column is provably type-stable.  With the knob
off the engine runs exactly the generic object-list kernels, which is the
middle leg of the three-way differential {typed, generic-vectorized, row}.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..errors import ConfigurationError

DEFAULT_BATCH_SIZE = 1024


def env_vectorize(default: bool = True) -> bool:
    """Execution-mode override via ``REPRO_ENGINE_VECTORIZE`` (``0`` or ``1``).

    Anything other than the two literal flags is a configuration error — a
    differential run that silently fell back to the default mode would
    compare an engine against itself.
    """
    value = os.environ.get("REPRO_ENGINE_VECTORIZE", "").strip()
    if not value:
        return default
    if value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_ENGINE_VECTORIZE environment variable must be '0' or '1' "
        f"(got {value!r})"
    )


def env_batch_size(default: int = DEFAULT_BATCH_SIZE) -> int:
    """Rows-per-batch override via ``REPRO_ENGINE_BATCH`` (integer >= 1)."""
    value = os.environ.get("REPRO_ENGINE_BATCH", "").strip()
    if not value:
        return default
    try:
        parsed = int(value)
    except ValueError:
        raise ConfigurationError(
            f"the REPRO_ENGINE_BATCH environment variable must be an integer "
            f"(got {value!r})"
        ) from None
    if parsed < 1:
        raise ConfigurationError(
            f"the REPRO_ENGINE_BATCH environment variable must be >= 1 "
            f"(got {parsed})"
        )
    return parsed


def env_typed(default: bool = True) -> bool:
    """Typed-kernel override via ``REPRO_ENGINE_TYPED`` (``0`` or ``1``).

    Same strictness as ``REPRO_ENGINE_VECTORIZE``: a differential leg that
    silently fell back to the default would compare an engine against
    itself.
    """
    value = os.environ.get("REPRO_ENGINE_TYPED", "").strip()
    if not value:
        return default
    if value == "1":
        return True
    if value == "0":
        return False
    raise ConfigurationError(
        f"the REPRO_ENGINE_TYPED environment variable must be '0' or '1' "
        f"(got {value!r})"
    )


@dataclass(frozen=True)
class VectorConfig:
    """The engine's execution-mode tunables (see the module docstring)."""

    enabled: bool = True
    batch_size: int = DEFAULT_BATCH_SIZE
    typed: bool = True

    @classmethod
    def from_env(cls, **overrides) -> "VectorConfig":
        """Build a config from the ``REPRO_ENGINE_*`` environment knobs.

        Keyword ``overrides`` win over the environment (the constructor-arg
        escape hatch for tests and embedded engines).
        """
        values = {
            "enabled": env_vectorize(),
            "batch_size": env_batch_size(),
            "typed": env_typed(),
        }
        values.update(overrides)
        return cls(**values)
