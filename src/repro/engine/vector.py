"""Vectorized expression evaluation: row batches and batch kernels.

The row-at-a-time interpreter in :mod:`repro.engine.expressions` pays one
Python closure dispatch *per AST node per row*; at bench scale that dispatch
dominates execution.  This module compiles the same expression trees into
*batch kernels* — closures with the signature ``kernel(batch, outers) ->
column`` that evaluate one node over a whole :class:`RowBatch` in a single
call, looping over column arrays in tight inner loops.  The executor, the
planner's scans/joins and the cluster's post-merge evaluation all ride these
kernels (``REPRO_ENGINE_VECTORIZE=0`` switches back to the row oracle).

Semantics are bit-identical to the row interpreter: three-valued logic,
NULL propagation, SQL comparison coercion (via the shared
:func:`repro.sql.types.sql_compare` / :func:`~repro.sql.types.sql_equal`
helpers on mixed types, with monomorphic fast paths for the common
numeric/date/string columns), ``CASE`` branch short-circuiting (result
branches only ever see the rows their condition selected) and sequential
conjunct compaction in the callers.  Conversion-UDF calls are *memo-batched*
through :meth:`repro.engine.executor.ExecutionContext.batch_call_function`:
duplicate ``(function, args)`` keys inside a batch hit the memo once per
distinct key and scatter the result, with counter parity to the row mode.

Sub-query nodes (scalar, ``IN``, ``EXISTS``) are evaluated through the row
compiler inside the batch (the *rowwise fallback*): their per-row cost is an
uncorrelated-cache lookup either way, and correlated sub-queries are
inherently row-at-a-time.

On top of the generic object-list kernels sits the **typed specialization
layer** (``REPRO_ENGINE_TYPED``, default on): where a base-table column is
provably type-stable (:mod:`repro.engine.columns`), numeric comparison /
arithmetic / BETWEEN / IN-list kernels are code-generated as tight loops
over ``array('q')`` / ``array('d')`` payloads — no ``sql_compare`` coercion,
no per-element type guard — with a null-aware variant when the column
carries a null set, and date-vs-literal comparisons reduced to integer
day-ordinal comparisons.  Every specialized kernel keeps its generic twin
and falls back *per batch* whenever a referenced column is not typed (join
intermediates, post-UDF values, mixed-type columns), so semantics never
depend on the data.  Filter compaction is selection-index based:
:meth:`RowBatch.filter` produces an index view over the shared payload
instead of rebuilding row-tuple lists between conjuncts.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional, Sequence

from ..errors import ExecutionError
from ..sql import ast
from ..sql.types import Date, sql_compare, sql_equal
from .columns import NUMERIC_KINDS, TypedColumn
from .expressions import (
    ExpressionCompiler,
    Scope,
    _date_arithmetic,
    _like_regex,
)

#: a compiled batch kernel: one call evaluates a node over a whole batch
BatchKernel = Callable[["RowBatch", tuple], list]


class RowBatch:
    """A window of rows processed as one unit: a shared payload + lazy views.

    A batch is either *dense* (``sel`` is None — its payload rows in payload
    order) or a *selection* — an index array into a payload shared with its
    parent batch.  Filters compact by composing selections instead of
    rebuilding row-tuple lists, so a conjunct chain over a scan touches row
    tuples zero times; ``rows`` gathers (and caches) the tuples only when a
    consumer actually asks for them.

    Columns materialize on first access via :meth:`column` — from the
    ``typed_source`` payload when it is zero-copy usable, from the table's
    version-cached object columns (``col_source``), or by gathering
    ``row[index]``.  Specialized kernels bypass the object columns entirely
    through :meth:`typed_column` + :attr:`sel`.  Invariant: a batch with
    sources and ``sel is None`` spans its table payload *in full, in payload
    order* (windows and filters over it always carry a selection).
    """

    __slots__ = ("n", "_rows", "_mat", "_sel", "_cols", "_col_source", "_typed_source")

    def __init__(
        self,
        rows: Sequence[tuple],
        col_source: Optional[Callable[[int], list]] = None,
        typed_source: Optional[Callable[[int], Optional[TypedColumn]]] = None,
    ) -> None:
        self._rows = rows
        self.n = len(rows)
        self._mat: Optional[list] = None
        self._sel: Optional[Sequence[int]] = None
        self._cols: dict[int, list] = {}
        self._col_source = col_source
        self._typed_source = typed_source

    @classmethod
    def _selection(cls, parent: "RowBatch", sel: Sequence[int]) -> "RowBatch":
        """A view keeping the payload positions in ``sel`` (payload-space)."""
        batch = cls.__new__(cls)
        batch._rows = parent._rows
        batch.n = len(sel)
        batch._mat = None
        batch._sel = sel
        batch._cols = {}
        batch._col_source = parent._col_source
        batch._typed_source = parent._typed_source
        return batch

    @property
    def rows(self) -> Sequence[tuple]:
        """The row tuples of this batch (gathered lazily for selections)."""
        sel = self._sel
        if sel is None:
            return self._rows
        mat = self._mat
        if mat is None:
            payload = self._rows
            mat = [payload[i] for i in sel]
            self._mat = mat
        return mat

    @property
    def sel(self) -> Optional[Sequence[int]]:
        """Selection indices into the shared payload; None = payload order."""
        return self._sel

    def column(self, index: int) -> Sequence[Any]:
        """The column array for slot ``index`` (gathered once, then cached).

        Resolution order: typed payload when its elements *are* the objects
        (strings, null-free numerics), then the table's cached object
        column, then the row tuples — selections gather through their index
        array either way.
        """
        col = self._cols.get(index)
        if col is not None:
            return col
        sel = self._sel
        typed = self._typed_source
        payload = None
        if typed is not None:
            typed_col = typed(index)
            if typed_col is not None:
                payload = typed_col.object_values()
        if payload is None and self._col_source is not None:
            payload = self._col_source(index)
        if payload is not None:
            col = payload if sel is None else [payload[i] for i in sel]
        elif sel is None:
            col = [row[index] for row in self._rows]
        else:
            payload_rows = self._rows
            col = [payload_rows[i][index] for i in sel]
        self._cols[index] = col
        return col

    def typed_column(self, index: int) -> Optional[TypedColumn]:
        """The :class:`TypedColumn` behind slot ``index``, if any.

        Payload-order (not batch-order): specialized kernels combine it
        with :attr:`sel`.  ``None`` whenever the batch has no typed source
        (join intermediates, sub-queries) or the column is not stable.
        """
        source = self._typed_source
        return source(index) if source is not None else None

    def filter(self, mask: Sequence[Any]) -> "RowBatch":
        """A batch keeping exactly the rows whose mask entry ``is True``
        (SQL predicates: NULL and False both drop the row).

        Compaction is selection-index based: the result is a view over the
        shared payload, and the incoming batch is returned unchanged (cached
        columns intact) when the mask keeps every row.
        """
        sel = self._sel
        if sel is None:
            kept = [i for i, keep in enumerate(mask) if keep is True]
        else:
            kept = [sel[i] for i, keep in enumerate(mask) if keep is True]
        if len(kept) == self.n:
            return self
        return RowBatch._selection(self, kept)

    def select(self, indices: Sequence[int]) -> "RowBatch":
        """A view of the rows at batch-local ``indices`` (CASE sub-batches).

        The index list is captured by reference and must not be mutated by
        the caller afterwards.
        """
        sel = self._sel
        if sel is not None:
            return RowBatch._selection(self, [sel[i] for i in indices])
        return RowBatch._selection(self, indices)

    def window(self, start: int, stop: int) -> "RowBatch":
        """The sub-batch of batch positions ``[start, stop)`` (clamped).

        The executor's bounded unit: selections slice their index array,
        source-backed dense batches window by ``range`` (keeping typed
        payload access), and plain row-list batches slice their rows.
        """
        stop = min(stop, self.n)
        sel = self._sel
        if sel is not None:
            return RowBatch._selection(self, sel[start:stop])
        if self._col_source is not None or self._typed_source is not None:
            return RowBatch._selection(self, range(start, stop))
        return RowBatch(self._rows[start:stop])


def apply_batch_predicates(
    batch: RowBatch, kernels: Sequence[BatchKernel], outers: tuple
) -> RowBatch:
    """Apply predicate kernels sequentially, compacting between them.

    Mirrors the row interpreter's conjunct short-circuit: a row dropped by an
    earlier predicate is never evaluated by a later one (``all()`` stops at
    the first non-True in row mode), so errors a later predicate would raise
    on filtered-out rows cannot surface in either mode.  Compaction is
    :meth:`RowBatch.filter` — the one selection-index seam — so no row-tuple
    list is rebuilt between conjuncts.
    """
    for kernel in kernels:
        if batch.n == 0:
            return batch
        batch = batch.filter(kernel(batch, outers))
    return batch


# ---------------------------------------------------------------------------
# kernel compiler
# ---------------------------------------------------------------------------

_PY_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ORDERING_TESTS = {
    "<": lambda ordering: ordering < 0,
    "<=": lambda ordering: ordering <= 0,
    ">": lambda ordering: ordering > 0,
    ">=": lambda ordering: ordering >= 0,
}


class BatchExpressionCompiler:
    """Compiles AST expressions against a scope into batch kernels.

    The mirror image of :class:`repro.engine.expressions.ExpressionCompiler`
    — same :class:`~repro.engine.expressions.Scope` resolution (so
    correlation flags behave identically), same NULL/error semantics, one
    kernel call per node per *batch* instead of one closure call per node
    per *row*.  ``context`` must provide ``batch_call_function`` (scalar
    function dispatch over argument columns); sub-query nodes additionally
    need ``prepare_subquery`` because they compile through the row
    interpreter (see the module docstring).

    When the context exposes an engine database with typed columns enabled
    (``context.database.vector.typed``), eligible kernels are additionally
    compiled with a typed fast path and per-batch generic fallback; contexts
    without a database (e.g. the cluster's post-merge evaluator, whose rows
    never come from a base table) compile pure-generic kernels.
    """

    def __init__(self, scope: Scope, context) -> None:
        self.scope = scope
        self.context = context
        database = getattr(context, "database", None)
        vector = getattr(database, "vector", None) if database is not None else None
        if vector is not None and getattr(vector, "typed", False):
            self._typed = True
            self._kernels = database.stats.kernels
        else:
            self._typed = False
            self._kernels = None
        # slots the static analyzer proved NOT NULL (repro.compile.typecheck):
        # typed kernels over only-proven slots skip null-set collection
        self._proven: frozenset = getattr(scope, "proven", frozenset())

    # -- public API ---------------------------------------------------------

    def compile(self, expr: ast.Expression) -> BatchKernel:
        """Compile one expression tree into a batch kernel."""
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression of type {type(expr).__name__}"
            )
        return method(expr)

    def compile_predicate(self, expr: ast.Expression) -> BatchKernel:
        """Compile a predicate; callers keep rows whose mask entry is True."""
        return self.compile(expr)

    # -- fallback -----------------------------------------------------------

    def _rowwise(self, expr: ast.Expression) -> BatchKernel:
        """Evaluate through the row interpreter, one call per batch row.

        Used for sub-query nodes: uncorrelated sub-queries answer from their
        per-statement cache (same cost as the row mode paid), correlated
        ones re-run per row by definition.
        """
        row_fn = ExpressionCompiler(self.scope, self.context).compile(expr)
        return lambda batch, outers: [row_fn(row, outers) for row in batch.rows]

    # -- leaves -------------------------------------------------------------

    def _compile_literal(self, expr: ast.Literal) -> BatchKernel:
        value = expr.value
        return lambda batch, outers: [value] * batch.n

    def _compile_column(self, expr: ast.Column) -> BatchKernel:
        resolved = self.scope.resolve(expr.name, expr.table)
        if resolved is None:
            raise ExecutionError(f"unknown column {expr.qualified!r}")
        depth, index = resolved
        if depth == 0:
            return lambda batch, outers: batch.column(index)
        outer_index = depth - 1
        return lambda batch, outers: [outers[outer_index][index]] * batch.n

    def _compile_star(self, expr: ast.Star) -> BatchKernel:
        raise ExecutionError("'*' is only valid in SELECT lists and COUNT(*)")

    def _compile_parameter(self, expr: ast.Parameter) -> BatchKernel:
        name = f":{expr.name}" if expr.name else f"?{expr.index}"
        raise ExecutionError(
            f"statement has an unbound parameter {name}; supply values via "
            f"execute(..., parameters=...) or the repro.api cursor"
        )

    # -- operators ----------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> BatchKernel:
        op = expr.op.upper()
        if op in ("AND", "OR"):
            left, right = self.compile(expr.left), self.compile(expr.right)
            return _logic_kernel(left, right, op)
        if op == "=" or op == "<>":
            return self._equality_kernel(expr, negated=op == "<>")
        if op in ("<", "<=", ">", ">="):
            return self._comparison_kernel(expr, op)
        if op in ("+", "-", "*", "/"):
            return self._arithmetic_kernel(expr, op)
        left, right = self.compile(expr.left), self.compile(expr.right)
        if op == "||":
            def concat(batch: RowBatch, outers: tuple) -> list:
                return [
                    None if a is None or b is None else str(a) + str(b)
                    for a, b in zip(left(batch, outers), right(batch, outers))
                ]

            return concat
        if op == "%":
            def modulo(batch: RowBatch, outers: tuple) -> list:
                return [
                    None if a is None or b is None else a % b
                    for a, b in zip(left(batch, outers), right(batch, outers))
                ]

            return modulo
        raise ExecutionError(f"unsupported operator {expr.op!r}")

    def _equality_kernel(self, expr: ast.BinaryOp, negated: bool) -> BatchKernel:
        generic = self._generic_equality(expr, negated)
        if self._typed:
            op_src = "!=" if negated else "=="
            typed = self._typed_predicate(expr.left, expr.right, op_src, generic)
            if typed is not None:
                return typed
        return generic

    def _generic_equality(self, expr: ast.BinaryOp, negated: bool) -> BatchKernel:
        const_side, value_side = _constant_operand(expr)
        if const_side is not None:
            value_k = self.compile(value_side)
            return _equal_const_kernel(value_k, const_side.value, negated)
        left, right = self.compile(expr.left), self.compile(expr.right)

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                equal = sql_equal(a, b)
                if equal is None:
                    append(None)
                else:
                    append(not equal if negated else equal)
            return out

        return kernel

    def _comparison_kernel(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        generic = self._generic_comparison(expr, op)
        if self._typed:
            typed = self._typed_predicate(expr.left, expr.right, op, generic)
            if typed is not None:
                return typed
        return generic

    def _generic_comparison(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        right_lit = _fold_literal(expr.right)
        if right_lit is not None and right_lit.value is not None:
            value_k = self.compile(expr.left)
            return _compare_const_kernel(value_k, right_lit.value, op)
        left_lit = _fold_literal(expr.left)
        if left_lit is not None and left_lit.value is not None:
            # const OP col  ==  col FLIPPED_OP const
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            value_k = self.compile(expr.right)
            return _compare_const_kernel(value_k, left_lit.value, flipped)
        left, right = self.compile(expr.left), self.compile(expr.right)
        test = _ORDERING_TESTS[op]

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                ordering = sql_compare(a, b)
                append(None if ordering is None else test(ordering))
            return out

        return kernel

    def _arithmetic_kernel(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        generic = self._generic_arithmetic(expr, op)
        if self._typed:
            slot_vars: dict[int, int] = {}
            try:
                dense, selected = self._typed_render(expr, slot_vars)
            except _TypedUnsupported:
                return generic
            if slot_vars:
                plan = self._typed_plan(dense, selected, slot_vars)
                return self._typed_numeric_kernel(plan, generic)
        return generic

    def _generic_arithmetic(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        folded = _fold_literal(expr)
        if folded is not None:
            return self._compile_literal(folded)
        right_lit = _fold_literal(expr.right)
        if right_lit is not None and right_lit.value is not None:
            value_k = self.compile(expr.left)
            return _arith_const_kernel(value_k, right_lit.value, op, const_right=True)
        left_lit = _fold_literal(expr.left)
        if left_lit is not None and left_lit.value is not None:
            value_k = self.compile(expr.right)
            return _arith_const_kernel(value_k, left_lit.value, op, const_right=False)
        left, right = self.compile(expr.left), self.compile(expr.right)
        return _arith_kernel(left, right, op)

    def _compile_unaryop(self, expr: ast.UnaryOp) -> BatchKernel:
        operand = self.compile(expr.operand)
        if expr.op.upper() == "NOT":
            return lambda batch, outers: [
                None if value is None else not value
                for value in operand(batch, outers)
            ]
        if expr.op == "-":
            return lambda batch, outers: [
                None if value is None else -value for value in operand(batch, outers)
            ]
        raise ExecutionError(f"unsupported unary operator {expr.op!r}")

    def _compile_case(self, expr: ast.Case) -> BatchKernel:
        compiled_whens = [
            (self.compile(when.condition), self.compile(when.result))
            for when in expr.whens
        ]
        compiled_else = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = [None] * batch.n
            # indices into `out` for the rows no WHEN has matched yet; result
            # branches are evaluated over sub-batches of exactly their rows,
            # preserving the row interpreter's short-circuit semantics
            pending = list(range(batch.n))
            current = batch
            for condition_k, result_k in compiled_whens:
                if not pending:
                    return out
                mask = condition_k(current, outers)
                hit = [local for local, flag in enumerate(mask) if flag is True]
                if hit:
                    values = result_k(current.select(hit), outers)
                    for local, value in zip(hit, values):
                        out[pending[local]] = value
                    miss = [local for local, flag in enumerate(mask) if flag is not True]
                    pending = [pending[local] for local in miss]
                    current = current.select(miss)
            if compiled_else is not None and pending:
                values = compiled_else(current, outers)
                for position, value in zip(pending, values):
                    out[position] = value
            return out

        return kernel

    def _compile_inlist(self, expr: ast.InList) -> BatchKernel:
        items = [item.value for item in expr.items if isinstance(item, ast.Literal)]
        if len(items) != len(expr.items):
            # non-literal membership lists keep the row interpreter's
            # per-row early-exit evaluation order exactly
            return self._rowwise(expr)
        value_k = self.compile(expr.expr)
        negated = expr.negated
        saw_null = any(item is None for item in items)
        present = [item for item in items if item is not None]
        family = _value_family(present)
        if family is not None:
            members = set(present)

            def fast(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                    elif type(value) in family:
                        if value in members:
                            append(not negated)
                        elif saw_null:
                            append(None)
                        else:
                            append(negated)
                    else:
                        append(_in_list_slow(value, items, negated))
                return out

            if self._typed and family == (int, float):
                slot = self._depth0_slot(expr.expr)
                if slot is not None:
                    return self._typed_inlist(slot, members, saw_null, negated, fast)
            return fast

        def kernel(batch: RowBatch, outers: tuple) -> list:
            return [
                None if value is None else _in_list_slow(value, items, negated)
                for value in value_k(batch, outers)
            ]

        return kernel

    def _compile_between(self, expr: ast.Between) -> BatchKernel:
        generic = self._generic_between(expr)
        if self._typed:
            typed = self._typed_between(expr, generic)
            if typed is not None:
                return typed
        return generic

    def _generic_between(self, expr: ast.Between) -> BatchKernel:
        value_k = self.compile(expr.expr)
        low_lit = _fold_literal(expr.low)
        high_lit = _fold_literal(expr.high)
        low_k = self.compile(low_lit if low_lit is not None else expr.low)
        high_k = self.compile(high_lit if high_lit is not None else expr.high)
        negated = expr.negated
        low_const = low_lit.value if low_lit is not None else None
        high_const = high_lit.value if high_lit is not None else None
        if _is_plain_number(low_const) and _is_plain_number(high_const):
            def fast(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                        continue
                    kind = type(value)
                    if kind is float or kind is int:
                        result = low_const <= value <= high_const
                    else:
                        result = (
                            sql_compare(value, low_const) >= 0
                            and sql_compare(value, high_const) <= 0
                        )
                    append(not result if negated else result)
                return out

            return fast

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value, low, high in zip(
                value_k(batch, outers), low_k(batch, outers), high_k(batch, outers)
            ):
                if value is None or low is None or high is None:
                    append(None)
                    continue
                result = sql_compare(value, low) >= 0 and sql_compare(value, high) <= 0
                append(not result if negated else result)
            return out

        return kernel

    def _compile_like(self, expr: ast.Like) -> BatchKernel:
        value_k = self.compile(expr.expr)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
            regex = _like_regex(expr.pattern.value)
            match = regex.match

            def static(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                    else:
                        matched = match(str(value)) is not None
                        append(not matched if negated else matched)
                return out

            return static

        pattern_k = self.compile(expr.pattern)

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value, pattern in zip(value_k(batch, outers), pattern_k(batch, outers)):
                if value is None or pattern is None:
                    append(None)
                else:
                    matched = _like_regex(str(pattern)).match(str(value)) is not None
                    append(not matched if negated else matched)
            return out

        return kernel

    def _compile_isnull(self, expr: ast.IsNull) -> BatchKernel:
        value_k = self.compile(expr.expr)
        if expr.negated:
            return lambda batch, outers: [
                value is not None for value in value_k(batch, outers)
            ]
        return lambda batch, outers: [value is None for value in value_k(batch, outers)]

    def _compile_extract(self, expr: ast.Extract) -> BatchKernel:
        value_k = self.compile(expr.expr)
        part = expr.part.upper()
        # like the row interpreter, an unsupported part only raises when a
        # non-NULL value is actually extracted
        attribute = part.lower() if part in ("YEAR", "MONTH", "DAY") else None

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value in value_k(batch, outers):
                if value is None:
                    append(None)
                    continue
                if attribute is None:
                    raise ExecutionError(f"unsupported EXTRACT part {part!r}")
                date = value if isinstance(value, Date) else Date.from_string(str(value))
                append(getattr(date, attribute))
            return out

        return kernel

    def _compile_substring(self, expr: ast.Substring) -> BatchKernel:
        value_k = self.compile(expr.expr)
        start_k = self.compile(expr.start)
        length_k = self.compile(expr.length) if expr.length is not None else None

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            values = value_k(batch, outers)
            starts = start_k(batch, outers)
            lengths = length_k(batch, outers) if length_k is not None else None
            for position, (value, start) in enumerate(zip(values, starts)):
                if value is None or start is None:
                    append(None)
                    continue
                text = str(value)
                begin = max(int(start) - 1, 0)
                if lengths is None:
                    append(text[begin:])
                    continue
                length = lengths[position]
                append(None if length is None else text[begin: begin + int(length)])
            return out

        return kernel

    # -- function calls -----------------------------------------------------

    def _compile_functioncall(self, expr: ast.FunctionCall) -> BatchKernel:
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name!r} is not allowed in this context"
            )
        arg_kernels = [self.compile(argument) for argument in expr.args]
        context = self.context
        name = expr.name

        def kernel(batch: RowBatch, outers: tuple) -> list:
            columns = [arg_kernel(batch, outers) for arg_kernel in arg_kernels]
            return context.batch_call_function(name, columns, batch.n)

        return kernel

    # -- sub-queries ---------------------------------------------------------

    def _compile_scalarsubquery(self, expr: ast.ScalarSubquery) -> BatchKernel:
        return self._rowwise(expr)

    def _compile_insubquery(self, expr: ast.InSubquery) -> BatchKernel:
        return self._rowwise(expr)

    def _compile_exists(self, expr: ast.Exists) -> BatchKernel:
        return self._rowwise(expr)

    # -- typed-column specialization ----------------------------------------
    #
    # Eligible expression shapes are code-generated into three loop variants
    # over typed payloads (dense, selected, null-aware); the compiled kernel
    # checks the batch's typed columns at run time and falls back to its
    # generic twin per batch, so a plan serves scans and join intermediates
    # alike.  Bit-identity holds because typed payloads round-trip their
    # values exactly and the generated operators are the same Python
    # operators the generic fast paths would have applied.

    def _depth0_slot(self, expr: ast.Expression) -> Optional[int]:
        """The storage slot of a depth-0 column reference, else ``None``."""
        if not isinstance(expr, ast.Column):
            return None
        resolved = self.scope.resolve(expr.name, expr.table)
        if resolved is None or resolved[0] != 0:
            return None
        return resolved[1]

    def _typed_render(
        self, expr: ast.Expression, slot_vars: dict[int, int]
    ) -> tuple[str, str]:
        """Render a provably numeric subtree as ``(dense, selected)`` source.

        Dense fragments are in terms of loop variables ``v<k>``, selected
        fragments index payloads ``c<k>[i]``; ``slot_vars`` accumulates the
        storage-slot -> variable mapping.  Constants embed via ``repr`` —
        exact for ``int`` and round-tripping for ``float``.  Division only
        renders with a non-zero literal divisor (a zero divisor must keep
        the row interpreter's runtime ``ExecutionError``).  Anything not
        provably numeric raises :class:`_TypedUnsupported`.
        """
        folded = _fold_literal(expr)
        if folded is not None:
            if not _is_plain_number(folded.value):
                raise _TypedUnsupported
            text = repr(folded.value)
            return text, text
        if isinstance(expr, ast.Column):
            slot = self._depth0_slot(expr)
            if slot is None:
                raise _TypedUnsupported
            var = slot_vars.setdefault(slot, len(slot_vars))
            return f"v{var}", f"c{var}[i]"
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            dense, selected = self._typed_render(expr.operand, slot_vars)
            return f"(-{dense})", f"(-{selected})"
        if isinstance(expr, ast.BinaryOp):
            op = expr.op
            if op in ("+", "-", "*"):
                left_d, left_s = self._typed_render(expr.left, slot_vars)
                right_d, right_s = self._typed_render(expr.right, slot_vars)
                return f"({left_d} {op} {right_d})", f"({left_s} {op} {right_s})"
            if op == "/":
                divisor = _fold_literal(expr.right)
                if (
                    divisor is None
                    or not _is_plain_number(divisor.value)
                    or divisor.value == 0
                ):
                    raise _TypedUnsupported
                left_d, left_s = self._typed_render(expr.left, slot_vars)
                text = repr(divisor.value)
                return f"({left_d} / {text})", f"({left_s} / {text})"
        raise _TypedUnsupported

    def _typed_plan(
        self, dense_body: str, selected_body: str, slot_vars: dict[int, int]
    ) -> "_TypedPlan":
        """``exec`` the three loop variants for one rendered expression."""
        slots = [0] * len(slot_vars)
        for slot, var in slot_vars.items():
            slots[var] = slot
        count = len(slots)
        args = ", ".join(f"c{k}" for k in range(count))
        if count == 1:
            dense_src = f"def dense(c0):\n    return [{dense_body} for v0 in c0]\n"
        else:
            unpack = ", ".join(f"v{k}" for k in range(count))
            dense_src = (
                f"def dense({args}):\n"
                f"    return [{dense_body} for {unpack} in zip({args})]\n"
            )
        selected_src = (
            f"def selected({args}, sel):\n    return [{selected_body} for i in sel]\n"
        )
        nullaware_src = (
            f"def nullaware({args}, sel, nulls):\n"
            f"    return [None if i in nulls else {selected_body} for i in sel]\n"
        )
        namespace: dict[str, Any] = {}
        exec(  # noqa: S102 - source assembled from vetted fragments only
            compile(dense_src + selected_src + nullaware_src, "<typed-kernel>", "exec"),
            {"__builtins__": {}, "zip": zip},
            namespace,
        )
        return _TypedPlan(
            slots, namespace["dense"], namespace["selected"], namespace["nullaware"]
        )

    def _typed_numeric_kernel(
        self, plan: "_TypedPlan", generic: BatchKernel
    ) -> BatchKernel:
        """Wrap a typed plan with the per-batch numeric guard + fallback.

        When every referenced slot is analyzer-proven NOT NULL the kernel
        skips null-set collection entirely — no per-column ``nulls`` check,
        never the null-aware loop — and counts as a *proven* dispatch.
        """
        slots = plan.slots
        dense = plan.dense
        selected = plan.selected
        nullaware = plan.nullaware
        counters = self._kernels
        proven = self._proven
        if proven and all(slot in proven for slot in slots):

            def proven_kernel(batch: RowBatch, outers: tuple) -> list:
                payloads = []
                for slot in slots:
                    typed = batch.typed_column(slot)
                    if typed is None or typed.kind not in NUMERIC_KINDS:
                        counters.generic += 1
                        return generic(batch, outers)
                    payloads.append(typed.values)
                counters.proven += 1
                sel = batch.sel
                if sel is None:
                    return dense(*payloads)
                return selected(*payloads, sel)

            return proven_kernel

        def kernel(batch: RowBatch, outers: tuple) -> list:
            payloads = []
            nulls = None
            for slot in slots:
                typed = batch.typed_column(slot)
                if typed is None or typed.kind not in NUMERIC_KINDS:
                    counters.generic += 1
                    return generic(batch, outers)
                payloads.append(typed.values)
                if typed.nulls is not None:
                    nulls = typed.nulls if nulls is None else nulls | typed.nulls
            counters.typed += 1
            sel = batch.sel
            if nulls is not None:
                return nullaware(
                    *payloads, sel if sel is not None else range(batch.n), nulls
                )
            if sel is None:
                return dense(*payloads)
            return selected(*payloads, sel)

        return kernel

    def _typed_predicate(
        self,
        left: ast.Expression,
        right: ast.Expression,
        op_src: str,
        generic: BatchKernel,
    ) -> Optional[BatchKernel]:
        """Typed kernel for ``left OP right``: numeric codegen, else dates."""
        slot_vars: dict[int, int] = {}
        try:
            left_d, left_s = self._typed_render(left, slot_vars)
            right_d, right_s = self._typed_render(right, slot_vars)
        except _TypedUnsupported:
            return self._typed_date_compare(left, right, op_src, generic)
        if not slot_vars:
            return None
        plan = self._typed_plan(
            f"({left_d} {op_src} {right_d})",
            f"({left_s} {op_src} {right_s})",
            slot_vars,
        )
        return self._typed_numeric_kernel(plan, generic)

    def _typed_date_compare(
        self,
        left: ast.Expression,
        right: ast.Expression,
        op_src: str,
        generic: BatchKernel,
    ) -> Optional[BatchKernel]:
        """``date_column OP DATE-literal`` reduced to day-ordinal compares.

        :class:`~repro.sql.types.Date` is ordered by its single ``days``
        field, so comparing ordinals is exactly comparing dates.  A literal
        on the left flips to the mirrored operator so the loop always runs
        ``op(value, const)``.
        """
        py_op = _PY_OP_BY_SRC[op_src]
        slot = self._depth0_slot(left)
        const = _fold_literal(right)
        if slot is None or const is None or type(const.value) is not Date:
            slot = self._depth0_slot(right)
            const = _fold_literal(left)
            if slot is None or const is None or type(const.value) is not Date:
                return None
            py_op = _MIRRORED_OPS[py_op]
        const_days = const.value.days
        counters = self._kernels
        if slot in self._proven:

            def proven_kernel(batch: RowBatch, outers: tuple) -> list:
                typed = batch.typed_column(slot)
                if typed is None or typed.kind != "date":
                    counters.generic += 1
                    return generic(batch, outers)
                counters.proven += 1
                values = typed.values
                sel = batch.sel
                if sel is None:
                    return [py_op(value, const_days) for value in values]
                return [py_op(values[i], const_days) for i in sel]

            return proven_kernel

        def kernel(batch: RowBatch, outers: tuple) -> list:
            typed = batch.typed_column(slot)
            if typed is None or typed.kind != "date":
                counters.generic += 1
                return generic(batch, outers)
            counters.typed += 1
            values = typed.values
            sel = batch.sel
            if typed.nulls is None:
                if sel is None:
                    return [py_op(value, const_days) for value in values]
                return [py_op(values[i], const_days) for i in sel]
            nulls = typed.nulls
            if sel is None:
                sel = range(batch.n)
            return [
                None if i in nulls else py_op(values[i], const_days) for i in sel
            ]

        return kernel

    def _typed_between(
        self, expr: ast.Between, generic: BatchKernel
    ) -> Optional[BatchKernel]:
        """Typed ``x BETWEEN low AND high`` for numeric or date shapes."""
        low = _fold_literal(expr.low)
        high = _fold_literal(expr.high)
        if low is None or high is None:
            return None
        if _is_plain_number(low.value) and _is_plain_number(high.value):
            slot_vars: dict[int, int] = {}
            try:
                dense, selected = self._typed_render(expr.expr, slot_vars)
            except _TypedUnsupported:
                return None
            if not slot_vars:
                return None
            dense_body = f"({low.value!r} <= {dense} <= {high.value!r})"
            selected_body = f"({low.value!r} <= {selected} <= {high.value!r})"
            if expr.negated:
                dense_body = f"(not {dense_body})"
                selected_body = f"(not {selected_body})"
            plan = self._typed_plan(dense_body, selected_body, slot_vars)
            return self._typed_numeric_kernel(plan, generic)
        if type(low.value) is Date and type(high.value) is Date:
            slot = self._depth0_slot(expr.expr)
            if slot is None:
                return None
            return self._typed_date_between(
                slot, low.value.days, high.value.days, expr.negated, generic
            )
        return None

    def _typed_date_between(
        self,
        slot: int,
        low_days: int,
        high_days: int,
        negated: bool,
        generic: BatchKernel,
    ) -> BatchKernel:
        """``date_column BETWEEN DATE-literals`` over day ordinals."""
        counters = self._kernels
        if slot in self._proven:

            def proven_kernel(batch: RowBatch, outers: tuple) -> list:
                typed = batch.typed_column(slot)
                if typed is None or typed.kind != "date":
                    counters.generic += 1
                    return generic(batch, outers)
                counters.proven += 1
                values = typed.values
                sel = batch.sel
                if sel is None:
                    if negated:
                        return [
                            not (low_days <= value <= high_days) for value in values
                        ]
                    return [low_days <= value <= high_days for value in values]
                if negated:
                    return [not (low_days <= values[i] <= high_days) for i in sel]
                return [low_days <= values[i] <= high_days for i in sel]

            return proven_kernel

        def kernel(batch: RowBatch, outers: tuple) -> list:
            typed = batch.typed_column(slot)
            if typed is None or typed.kind != "date":
                counters.generic += 1
                return generic(batch, outers)
            counters.typed += 1
            values = typed.values
            sel = batch.sel
            if typed.nulls is None:
                if sel is None:
                    if negated:
                        return [
                            not (low_days <= value <= high_days) for value in values
                        ]
                    return [low_days <= value <= high_days for value in values]
                if negated:
                    return [not (low_days <= values[i] <= high_days) for i in sel]
                return [low_days <= values[i] <= high_days for i in sel]
            nulls = typed.nulls
            if sel is None:
                sel = range(batch.n)
            if negated:
                return [
                    None if i in nulls else not (low_days <= values[i] <= high_days)
                    for i in sel
                ]
            return [
                None if i in nulls else (low_days <= values[i] <= high_days)
                for i in sel
            ]

        return kernel

    def _typed_inlist(
        self,
        slot: int,
        members: set,
        saw_null: bool,
        negated: bool,
        generic: BatchKernel,
    ) -> BatchKernel:
        """Typed set-membership for a numeric column against numeric literals."""
        counters = self._kernels
        if slot in self._proven:

            def proven_kernel(batch: RowBatch, outers: tuple) -> list:
                typed = batch.typed_column(slot)
                if typed is None or typed.kind not in NUMERIC_KINDS:
                    counters.generic += 1
                    return generic(batch, outers)
                counters.proven += 1
                values = typed.values
                sel = batch.sel
                if not saw_null:
                    if sel is None:
                        return [(value in members) != negated for value in values]
                    return [(values[i] in members) != negated for i in sel]
                if sel is None:
                    return [
                        (not negated) if value in members else None for value in values
                    ]
                return [
                    (not negated) if values[i] in members else None for i in sel
                ]

            return proven_kernel

        def kernel(batch: RowBatch, outers: tuple) -> list:
            typed = batch.typed_column(slot)
            if typed is None or typed.kind not in NUMERIC_KINDS:
                counters.generic += 1
                return generic(batch, outers)
            counters.typed += 1
            values = typed.values
            sel = batch.sel
            nulls = typed.nulls
            if nulls is None and not saw_null:
                if sel is None:
                    return [(value in members) != negated for value in values]
                return [(values[i] in members) != negated for i in sel]
            if sel is None:
                sel = range(batch.n)
            out = []
            append = out.append
            for i in sel:
                if nulls is not None and i in nulls:
                    append(None)
                elif values[i] in members:
                    append(not negated)
                elif saw_null:
                    append(None)
                else:
                    append(negated)
            return out

        return kernel


class _TypedUnsupported(Exception):
    """Internal: a subtree cannot compile into a typed numeric kernel."""


class _TypedPlan:
    """A codegen'd kernel triple over typed payloads for one expression.

    ``slots`` are the storage column indexes feeding the expression (in
    payload-argument order); ``dense`` evaluates full payloads in one zip
    loop, ``selected`` evaluates the payload positions of a selection
    array, and ``nullaware`` additionally yields ``None`` at positions in
    a null set (the union of the referenced columns' null sets — every
    generated operator is NULL-strict, so any NULL operand nulls the row).
    """

    __slots__ = ("slots", "dense", "selected", "nullaware")

    def __init__(self, slots, dense, selected, nullaware) -> None:
        self.slots = slots
        self.dense = dense
        self.selected = selected
        self.nullaware = nullaware


_PY_OP_BY_SRC = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}

#: op(a, b) == mirrored_op(b, a) — used to flip const-on-the-left compares
_MIRRORED_OPS = {
    operator.lt: operator.gt,
    operator.le: operator.ge,
    operator.gt: operator.lt,
    operator.ge: operator.le,
    operator.eq: operator.eq,
    operator.ne: operator.ne,
}


# ---------------------------------------------------------------------------
# kernel helpers
# ---------------------------------------------------------------------------


def _fold_literal(expr: ast.Expression) -> Optional[ast.Literal]:
    """Fold a literal-only arithmetic subtree into one literal, else None.

    Rewrites routinely leave constant subtrees like ``DATE '1994-01-01' +
    INTERVAL '1' year`` or ``.06 - 0.01`` in predicates; the row interpreter
    recomputes them per row with an identical result, so folding once at
    compile time is observationally equivalent — except for *when* errors
    surface.  A constant whose evaluation raises (e.g. a literal division by
    zero) therefore refuses to fold and stays a runtime kernel, exactly as
    row mode leaves it.
    """
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _fold_literal(expr.operand)
        if inner is None or inner.value is None:
            return None
        try:
            return ast.Literal(value=-inner.value)
        except Exception:
            return None
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
        left, right = _fold_literal(expr.left), _fold_literal(expr.right)
        if left is None or right is None:
            return None
        try:
            return ast.Literal(value=_arith_value(left.value, right.value, expr.op))
        except Exception:
            return None
    return None


def _constant_operand(
    expr: ast.BinaryOp,
) -> tuple[Optional[ast.Literal], Optional[ast.Expression]]:
    """``(literal, other)`` when one operand folds to a non-NULL constant."""
    right = _fold_literal(expr.right)
    if right is not None and right.value is not None:
        return right, expr.left
    left = _fold_literal(expr.left)
    if left is not None and left.value is not None:
        return left, expr.right
    return None, None


def _is_plain_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _value_family(values: list) -> Optional[tuple]:
    """The homogeneous fast-path type family of literal values, if any.

    Within a family Python's ``==``/``hash`` agree with :func:`sql_equal`,
    so set membership is sound; mixed or exotic literals return ``None`` and
    the caller keeps the per-item comparison loop.
    """
    if not values:
        return None
    if all(_is_plain_number(value) for value in values):
        return (int, float)
    if all(type(value) is str for value in values):
        return (str,)
    if all(type(value) is Date for value in values):
        return (Date,)
    return None


def _in_list_slow(value: Any, items: list, negated: bool) -> Optional[bool]:
    """The row interpreter's IN-list scan for one non-NULL value."""
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
            continue
        if sql_equal(value, item) is True:
            return not negated
    if saw_null:
        return None
    return negated


def _logic_kernel(left: BatchKernel, right: BatchKernel, op: str) -> BatchKernel:
    """Three-valued AND/OR over two mask columns (both sides evaluated,
    exactly like the row interpreter)."""
    if op == "AND":
        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                if a is False or b is False:
                    append(False)
                elif a is None or b is None:
                    append(None)
                else:
                    append(True)
            return out

        return kernel

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for a, b in zip(left(batch, outers), right(batch, outers)):
            if a is True or b is True:
                append(True)
            elif a is None or b is None:
                append(None)
            else:
                append(False)
        return out

    return kernel


def _compare_const_kernel(value_k: BatchKernel, const: Any, op: str) -> BatchKernel:
    """``column OP constant`` with a monomorphic fast path.

    When an element's concrete type matches the constant's family the Python
    operator applies directly (numbers, dates, strings order exactly like
    :func:`sql_compare`); any other element falls back to the shared
    coercion helper so mixed columns keep identical semantics and errors.
    """
    py_op = _PY_OPS[op]
    test = _ORDERING_TESTS[op]
    if _is_plain_number(const):
        fast_types = (int, float)
    elif type(const) is Date:
        fast_types = (Date,)
    elif type(const) is str:
        fast_types = (str,)
    else:
        fast_types = ()

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif type(value) in fast_types:
                append(py_op(value, const))
            else:
                ordering = sql_compare(value, const)
                append(None if ordering is None else test(ordering))
        return out

    return kernel


def _equal_const_kernel(value_k: BatchKernel, const: Any, negated: bool) -> BatchKernel:
    """``column = constant`` / ``column <> constant`` with a fast path."""
    if _is_plain_number(const):
        fast_types = (int, float)
    elif type(const) is Date:
        fast_types = (Date,)
    elif type(const) is str:
        fast_types = (str,)
    else:
        fast_types = ()

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif type(value) in fast_types:
                equal = value == const
                append(not equal if negated else equal)
            else:
                equal = sql_equal(value, const)
                if equal is None:
                    append(None)
                else:
                    append(not equal if negated else equal)
        return out

    return kernel


def _arith_kernel(left: BatchKernel, right: BatchKernel, op: str) -> BatchKernel:
    """Column-vs-column ``+ - * /`` with NULL propagation and date math."""
    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for a, b in zip(left(batch, outers), right(batch, outers)):
            append(_arith_value(a, b, op))
        return out

    return kernel


def _arith_const_kernel(
    value_k: BatchKernel, const: Any, op: str, const_right: bool
) -> BatchKernel:
    """``column OP constant`` (or flipped) arithmetic with a numeric fast path."""
    numeric_const = _is_plain_number(const)
    if const_right:
        if numeric_const and op == "+":
            fast = lambda a: a + const  # noqa: E731
        elif numeric_const and op == "-":
            fast = lambda a: a - const  # noqa: E731
        elif numeric_const and op == "*":
            fast = lambda a: a * const  # noqa: E731
        elif numeric_const and op == "/" and const != 0:
            fast = lambda a: a / const  # noqa: E731
        else:
            fast = None
    elif numeric_const and op == "+":
        fast = lambda b: const + b  # noqa: E731
    elif numeric_const and op == "-":
        fast = lambda b: const - b  # noqa: E731
    elif numeric_const and op == "*":
        fast = lambda b: const * b  # noqa: E731
    else:
        fast = None

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif fast is not None and (type(value) is float or type(value) is int):
                append(fast(value))
            elif const_right:
                append(_arith_value(value, const, op))
            else:
                append(_arith_value(const, value, op))
        return out

    return kernel


def _arith_value(a: Any, b: Any, op: str) -> Any:
    """One arithmetic evaluation, mirroring the row interpreter exactly."""
    if a is None or b is None:
        return None
    if isinstance(a, Date) or isinstance(b, Date):
        return _date_arithmetic(a, b, op)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b
