"""Vectorized expression evaluation: row batches and batch kernels.

The row-at-a-time interpreter in :mod:`repro.engine.expressions` pays one
Python closure dispatch *per AST node per row*; at bench scale that dispatch
dominates execution.  This module compiles the same expression trees into
*batch kernels* — closures with the signature ``kernel(batch, outers) ->
column`` that evaluate one node over a whole :class:`RowBatch` in a single
call, looping over column arrays in tight inner loops.  The executor, the
planner's scans/joins and the cluster's post-merge evaluation all ride these
kernels (``REPRO_ENGINE_VECTORIZE=0`` switches back to the row oracle).

Semantics are bit-identical to the row interpreter: three-valued logic,
NULL propagation, SQL comparison coercion (via the shared
:func:`repro.sql.types.sql_compare` / :func:`~repro.sql.types.sql_equal`
helpers on mixed types, with monomorphic fast paths for the common
numeric/date/string columns), ``CASE`` branch short-circuiting (result
branches only ever see the rows their condition selected) and sequential
conjunct compaction in the callers.  Conversion-UDF calls are *memo-batched*
through :meth:`repro.engine.executor.ExecutionContext.batch_call_function`:
duplicate ``(function, args)`` keys inside a batch hit the memo once per
distinct key and scatter the result, with counter parity to the row mode.

Sub-query nodes (scalar, ``IN``, ``EXISTS``) are evaluated through the row
compiler inside the batch (the *rowwise fallback*): their per-row cost is an
uncorrelated-cache lookup either way, and correlated sub-queries are
inherently row-at-a-time.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Optional, Sequence

from ..errors import ExecutionError
from ..sql import ast
from ..sql.types import Date, sql_compare, sql_equal
from .expressions import (
    ExpressionCompiler,
    Scope,
    _date_arithmetic,
    _like_regex,
)

#: a compiled batch kernel: one call evaluates a node over a whole batch
BatchKernel = Callable[["RowBatch", tuple], list]


class RowBatch:
    """A window of rows processed as one unit: row tuples + lazy columns.

    The batch always carries its ``rows`` (list of row tuples, the join and
    storage currency), and materializes a column array on first access via
    :meth:`column` — either by gathering ``row[index]`` or, for base-table
    scans, by slicing the table's version-cached column arrays through the
    ``col_source`` accelerator.  Kernels read columns; the rowwise fallback
    and the join machinery read rows; nothing is transposed twice.
    """

    __slots__ = ("rows", "n", "_cols", "_col_source")

    def __init__(
        self,
        rows: Sequence[tuple],
        col_source: Optional[Callable[[int], list]] = None,
    ) -> None:
        self.rows = rows
        self.n = len(rows)
        self._cols: dict[int, list] = {}
        self._col_source = col_source

    def column(self, index: int) -> list:
        """The column array for slot ``index`` (gathered once, then cached)."""
        col = self._cols.get(index)
        if col is None:
            source = self._col_source
            if source is not None:
                col = source(index)
            else:
                col = [row[index] for row in self.rows]
            self._cols[index] = col
        return col

    def filter(self, mask: Sequence[Any]) -> "RowBatch":
        """A new batch keeping exactly the rows whose mask entry ``is True``
        (SQL predicates: NULL and False both drop the row)."""
        return RowBatch([row for row, keep in zip(self.rows, mask) if keep is True])

    def select(self, indices: Sequence[int]) -> "RowBatch":
        """A new batch of the rows at ``indices`` (CASE branch sub-batches)."""
        rows = self.rows
        return RowBatch([rows[index] for index in indices])


def apply_batch_predicates(
    batch: RowBatch, kernels: Sequence[BatchKernel], outers: tuple
) -> RowBatch:
    """Apply predicate kernels sequentially, compacting between them.

    Mirrors the row interpreter's conjunct short-circuit: a row dropped by an
    earlier predicate is never evaluated by a later one (``all()`` stops at
    the first non-True in row mode), so errors a later predicate would raise
    on filtered-out rows cannot surface in either mode.  The incoming batch
    is reused (cached columns intact) when a predicate keeps every row.
    """
    for kernel in kernels:
        if batch.n == 0:
            return batch
        mask = kernel(batch, outers)
        kept = [row for row, flag in zip(batch.rows, mask) if flag is True]
        if len(kept) != batch.n:
            batch = RowBatch(kept)
    return batch


# ---------------------------------------------------------------------------
# kernel compiler
# ---------------------------------------------------------------------------

_PY_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_ORDERING_TESTS = {
    "<": lambda ordering: ordering < 0,
    "<=": lambda ordering: ordering <= 0,
    ">": lambda ordering: ordering > 0,
    ">=": lambda ordering: ordering >= 0,
}


class BatchExpressionCompiler:
    """Compiles AST expressions against a scope into batch kernels.

    The mirror image of :class:`repro.engine.expressions.ExpressionCompiler`
    — same :class:`~repro.engine.expressions.Scope` resolution (so
    correlation flags behave identically), same NULL/error semantics, one
    kernel call per node per *batch* instead of one closure call per node
    per *row*.  ``context`` must provide ``batch_call_function`` (scalar
    function dispatch over argument columns); sub-query nodes additionally
    need ``prepare_subquery`` because they compile through the row
    interpreter (see the module docstring).
    """

    def __init__(self, scope: Scope, context) -> None:
        self.scope = scope
        self.context = context

    # -- public API ---------------------------------------------------------

    def compile(self, expr: ast.Expression) -> BatchKernel:
        """Compile one expression tree into a batch kernel."""
        method = getattr(self, f"_compile_{type(expr).__name__.lower()}", None)
        if method is None:
            raise ExecutionError(
                f"cannot evaluate expression of type {type(expr).__name__}"
            )
        return method(expr)

    def compile_predicate(self, expr: ast.Expression) -> BatchKernel:
        """Compile a predicate; callers keep rows whose mask entry is True."""
        return self.compile(expr)

    # -- fallback -----------------------------------------------------------

    def _rowwise(self, expr: ast.Expression) -> BatchKernel:
        """Evaluate through the row interpreter, one call per batch row.

        Used for sub-query nodes: uncorrelated sub-queries answer from their
        per-statement cache (same cost as the row mode paid), correlated
        ones re-run per row by definition.
        """
        row_fn = ExpressionCompiler(self.scope, self.context).compile(expr)
        return lambda batch, outers: [row_fn(row, outers) for row in batch.rows]

    # -- leaves -------------------------------------------------------------

    def _compile_literal(self, expr: ast.Literal) -> BatchKernel:
        value = expr.value
        return lambda batch, outers: [value] * batch.n

    def _compile_column(self, expr: ast.Column) -> BatchKernel:
        resolved = self.scope.resolve(expr.name, expr.table)
        if resolved is None:
            raise ExecutionError(f"unknown column {expr.qualified!r}")
        depth, index = resolved
        if depth == 0:
            return lambda batch, outers: batch.column(index)
        outer_index = depth - 1
        return lambda batch, outers: [outers[outer_index][index]] * batch.n

    def _compile_star(self, expr: ast.Star) -> BatchKernel:
        raise ExecutionError("'*' is only valid in SELECT lists and COUNT(*)")

    def _compile_parameter(self, expr: ast.Parameter) -> BatchKernel:
        name = f":{expr.name}" if expr.name else f"?{expr.index}"
        raise ExecutionError(
            f"statement has an unbound parameter {name}; supply values via "
            f"execute(..., parameters=...) or the repro.api cursor"
        )

    # -- operators ----------------------------------------------------------

    def _compile_binaryop(self, expr: ast.BinaryOp) -> BatchKernel:
        op = expr.op.upper()
        if op in ("AND", "OR"):
            left, right = self.compile(expr.left), self.compile(expr.right)
            return _logic_kernel(left, right, op)
        if op == "=" or op == "<>":
            return self._equality_kernel(expr, negated=op == "<>")
        if op in ("<", "<=", ">", ">="):
            return self._comparison_kernel(expr, op)
        if op in ("+", "-", "*", "/"):
            return self._arithmetic_kernel(expr, op)
        left, right = self.compile(expr.left), self.compile(expr.right)
        if op == "||":
            def concat(batch: RowBatch, outers: tuple) -> list:
                return [
                    None if a is None or b is None else str(a) + str(b)
                    for a, b in zip(left(batch, outers), right(batch, outers))
                ]

            return concat
        if op == "%":
            def modulo(batch: RowBatch, outers: tuple) -> list:
                return [
                    None if a is None or b is None else a % b
                    for a, b in zip(left(batch, outers), right(batch, outers))
                ]

            return modulo
        raise ExecutionError(f"unsupported operator {expr.op!r}")

    def _equality_kernel(self, expr: ast.BinaryOp, negated: bool) -> BatchKernel:
        const_side, value_side = _constant_operand(expr)
        if const_side is not None:
            value_k = self.compile(value_side)
            return _equal_const_kernel(value_k, const_side.value, negated)
        left, right = self.compile(expr.left), self.compile(expr.right)

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                equal = sql_equal(a, b)
                if equal is None:
                    append(None)
                else:
                    append(not equal if negated else equal)
            return out

        return kernel

    def _comparison_kernel(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        right_lit = _fold_literal(expr.right)
        if right_lit is not None and right_lit.value is not None:
            value_k = self.compile(expr.left)
            return _compare_const_kernel(value_k, right_lit.value, op)
        left_lit = _fold_literal(expr.left)
        if left_lit is not None and left_lit.value is not None:
            # const OP col  ==  col FLIPPED_OP const
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            value_k = self.compile(expr.right)
            return _compare_const_kernel(value_k, left_lit.value, flipped)
        left, right = self.compile(expr.left), self.compile(expr.right)
        test = _ORDERING_TESTS[op]

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                ordering = sql_compare(a, b)
                append(None if ordering is None else test(ordering))
            return out

        return kernel

    def _arithmetic_kernel(self, expr: ast.BinaryOp, op: str) -> BatchKernel:
        folded = _fold_literal(expr)
        if folded is not None:
            return self._compile_literal(folded)
        right_lit = _fold_literal(expr.right)
        if right_lit is not None and right_lit.value is not None:
            value_k = self.compile(expr.left)
            return _arith_const_kernel(value_k, right_lit.value, op, const_right=True)
        left_lit = _fold_literal(expr.left)
        if left_lit is not None and left_lit.value is not None:
            value_k = self.compile(expr.right)
            return _arith_const_kernel(value_k, left_lit.value, op, const_right=False)
        left, right = self.compile(expr.left), self.compile(expr.right)
        return _arith_kernel(left, right, op)

    def _compile_unaryop(self, expr: ast.UnaryOp) -> BatchKernel:
        operand = self.compile(expr.operand)
        if expr.op.upper() == "NOT":
            return lambda batch, outers: [
                None if value is None else not value
                for value in operand(batch, outers)
            ]
        if expr.op == "-":
            return lambda batch, outers: [
                None if value is None else -value for value in operand(batch, outers)
            ]
        raise ExecutionError(f"unsupported unary operator {expr.op!r}")

    def _compile_case(self, expr: ast.Case) -> BatchKernel:
        compiled_whens = [
            (self.compile(when.condition), self.compile(when.result))
            for when in expr.whens
        ]
        compiled_else = (
            self.compile(expr.else_result) if expr.else_result is not None else None
        )

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = [None] * batch.n
            # indices into `out` for the rows no WHEN has matched yet; result
            # branches are evaluated over sub-batches of exactly their rows,
            # preserving the row interpreter's short-circuit semantics
            pending = list(range(batch.n))
            current = batch
            for condition_k, result_k in compiled_whens:
                if not pending:
                    return out
                mask = condition_k(current, outers)
                hit = [local for local, flag in enumerate(mask) if flag is True]
                if hit:
                    values = result_k(current.select(hit), outers)
                    for local, value in zip(hit, values):
                        out[pending[local]] = value
                    miss = [local for local, flag in enumerate(mask) if flag is not True]
                    pending = [pending[local] for local in miss]
                    current = current.select(miss)
            if compiled_else is not None and pending:
                values = compiled_else(current, outers)
                for position, value in zip(pending, values):
                    out[position] = value
            return out

        return kernel

    def _compile_inlist(self, expr: ast.InList) -> BatchKernel:
        items = [item.value for item in expr.items if isinstance(item, ast.Literal)]
        if len(items) != len(expr.items):
            # non-literal membership lists keep the row interpreter's
            # per-row early-exit evaluation order exactly
            return self._rowwise(expr)
        value_k = self.compile(expr.expr)
        negated = expr.negated
        saw_null = any(item is None for item in items)
        present = [item for item in items if item is not None]
        family = _value_family(present)
        if family is not None:
            members = set(present)

            def fast(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                    elif type(value) in family:
                        if value in members:
                            append(not negated)
                        elif saw_null:
                            append(None)
                        else:
                            append(negated)
                    else:
                        append(_in_list_slow(value, items, negated))
                return out

            return fast

        def kernel(batch: RowBatch, outers: tuple) -> list:
            return [
                None if value is None else _in_list_slow(value, items, negated)
                for value in value_k(batch, outers)
            ]

        return kernel

    def _compile_between(self, expr: ast.Between) -> BatchKernel:
        value_k = self.compile(expr.expr)
        low_lit = _fold_literal(expr.low)
        high_lit = _fold_literal(expr.high)
        low_k = self.compile(low_lit if low_lit is not None else expr.low)
        high_k = self.compile(high_lit if high_lit is not None else expr.high)
        negated = expr.negated
        low_const = low_lit.value if low_lit is not None else None
        high_const = high_lit.value if high_lit is not None else None
        if _is_plain_number(low_const) and _is_plain_number(high_const):
            def fast(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                        continue
                    kind = type(value)
                    if kind is float or kind is int:
                        result = low_const <= value <= high_const
                    else:
                        result = (
                            sql_compare(value, low_const) >= 0
                            and sql_compare(value, high_const) <= 0
                        )
                    append(not result if negated else result)
                return out

            return fast

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value, low, high in zip(
                value_k(batch, outers), low_k(batch, outers), high_k(batch, outers)
            ):
                if value is None or low is None or high is None:
                    append(None)
                    continue
                result = sql_compare(value, low) >= 0 and sql_compare(value, high) <= 0
                append(not result if negated else result)
            return out

        return kernel

    def _compile_like(self, expr: ast.Like) -> BatchKernel:
        value_k = self.compile(expr.expr)
        negated = expr.negated
        if isinstance(expr.pattern, ast.Literal) and isinstance(expr.pattern.value, str):
            regex = _like_regex(expr.pattern.value)
            match = regex.match

            def static(batch: RowBatch, outers: tuple) -> list:
                out = []
                append = out.append
                for value in value_k(batch, outers):
                    if value is None:
                        append(None)
                    else:
                        matched = match(str(value)) is not None
                        append(not matched if negated else matched)
                return out

            return static

        pattern_k = self.compile(expr.pattern)

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value, pattern in zip(value_k(batch, outers), pattern_k(batch, outers)):
                if value is None or pattern is None:
                    append(None)
                else:
                    matched = _like_regex(str(pattern)).match(str(value)) is not None
                    append(not matched if negated else matched)
            return out

        return kernel

    def _compile_isnull(self, expr: ast.IsNull) -> BatchKernel:
        value_k = self.compile(expr.expr)
        if expr.negated:
            return lambda batch, outers: [
                value is not None for value in value_k(batch, outers)
            ]
        return lambda batch, outers: [value is None for value in value_k(batch, outers)]

    def _compile_extract(self, expr: ast.Extract) -> BatchKernel:
        value_k = self.compile(expr.expr)
        part = expr.part.upper()
        # like the row interpreter, an unsupported part only raises when a
        # non-NULL value is actually extracted
        attribute = part.lower() if part in ("YEAR", "MONTH", "DAY") else None

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for value in value_k(batch, outers):
                if value is None:
                    append(None)
                    continue
                if attribute is None:
                    raise ExecutionError(f"unsupported EXTRACT part {part!r}")
                date = value if isinstance(value, Date) else Date.from_string(str(value))
                append(getattr(date, attribute))
            return out

        return kernel

    def _compile_substring(self, expr: ast.Substring) -> BatchKernel:
        value_k = self.compile(expr.expr)
        start_k = self.compile(expr.start)
        length_k = self.compile(expr.length) if expr.length is not None else None

        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            values = value_k(batch, outers)
            starts = start_k(batch, outers)
            lengths = length_k(batch, outers) if length_k is not None else None
            for position, (value, start) in enumerate(zip(values, starts)):
                if value is None or start is None:
                    append(None)
                    continue
                text = str(value)
                begin = max(int(start) - 1, 0)
                if lengths is None:
                    append(text[begin:])
                    continue
                length = lengths[position]
                append(None if length is None else text[begin: begin + int(length)])
            return out

        return kernel

    # -- function calls -----------------------------------------------------

    def _compile_functioncall(self, expr: ast.FunctionCall) -> BatchKernel:
        if expr.is_aggregate:
            raise ExecutionError(
                f"aggregate {expr.name!r} is not allowed in this context"
            )
        arg_kernels = [self.compile(argument) for argument in expr.args]
        context = self.context
        name = expr.name

        def kernel(batch: RowBatch, outers: tuple) -> list:
            columns = [arg_kernel(batch, outers) for arg_kernel in arg_kernels]
            return context.batch_call_function(name, columns, batch.n)

        return kernel

    # -- sub-queries ---------------------------------------------------------

    def _compile_scalarsubquery(self, expr: ast.ScalarSubquery) -> BatchKernel:
        return self._rowwise(expr)

    def _compile_insubquery(self, expr: ast.InSubquery) -> BatchKernel:
        return self._rowwise(expr)

    def _compile_exists(self, expr: ast.Exists) -> BatchKernel:
        return self._rowwise(expr)


# ---------------------------------------------------------------------------
# kernel helpers
# ---------------------------------------------------------------------------


def _fold_literal(expr: ast.Expression) -> Optional[ast.Literal]:
    """Fold a literal-only arithmetic subtree into one literal, else None.

    Rewrites routinely leave constant subtrees like ``DATE '1994-01-01' +
    INTERVAL '1' year`` or ``.06 - 0.01`` in predicates; the row interpreter
    recomputes them per row with an identical result, so folding once at
    compile time is observationally equivalent — except for *when* errors
    surface.  A constant whose evaluation raises (e.g. a literal division by
    zero) therefore refuses to fold and stays a runtime kernel, exactly as
    row mode leaves it.
    """
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.UnaryOp) and expr.op == "-":
        inner = _fold_literal(expr.operand)
        if inner is None or inner.value is None:
            return None
        try:
            return ast.Literal(value=-inner.value)
        except Exception:
            return None
    if isinstance(expr, ast.BinaryOp) and expr.op in ("+", "-", "*", "/"):
        left, right = _fold_literal(expr.left), _fold_literal(expr.right)
        if left is None or right is None:
            return None
        try:
            return ast.Literal(value=_arith_value(left.value, right.value, expr.op))
        except Exception:
            return None
    return None


def _constant_operand(
    expr: ast.BinaryOp,
) -> tuple[Optional[ast.Literal], Optional[ast.Expression]]:
    """``(literal, other)`` when one operand folds to a non-NULL constant."""
    right = _fold_literal(expr.right)
    if right is not None and right.value is not None:
        return right, expr.left
    left = _fold_literal(expr.left)
    if left is not None and left.value is not None:
        return left, expr.right
    return None, None


def _is_plain_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _value_family(values: list) -> Optional[tuple]:
    """The homogeneous fast-path type family of literal values, if any.

    Within a family Python's ``==``/``hash`` agree with :func:`sql_equal`,
    so set membership is sound; mixed or exotic literals return ``None`` and
    the caller keeps the per-item comparison loop.
    """
    if not values:
        return None
    if all(_is_plain_number(value) for value in values):
        return (int, float)
    if all(type(value) is str for value in values):
        return (str,)
    if all(type(value) is Date for value in values):
        return (Date,)
    return None


def _in_list_slow(value: Any, items: list, negated: bool) -> Optional[bool]:
    """The row interpreter's IN-list scan for one non-NULL value."""
    saw_null = False
    for item in items:
        if item is None:
            saw_null = True
            continue
        if sql_equal(value, item) is True:
            return not negated
    if saw_null:
        return None
    return negated


def _logic_kernel(left: BatchKernel, right: BatchKernel, op: str) -> BatchKernel:
    """Three-valued AND/OR over two mask columns (both sides evaluated,
    exactly like the row interpreter)."""
    if op == "AND":
        def kernel(batch: RowBatch, outers: tuple) -> list:
            out = []
            append = out.append
            for a, b in zip(left(batch, outers), right(batch, outers)):
                if a is False or b is False:
                    append(False)
                elif a is None or b is None:
                    append(None)
                else:
                    append(True)
            return out

        return kernel

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for a, b in zip(left(batch, outers), right(batch, outers)):
            if a is True or b is True:
                append(True)
            elif a is None or b is None:
                append(None)
            else:
                append(False)
        return out

    return kernel


def _compare_const_kernel(value_k: BatchKernel, const: Any, op: str) -> BatchKernel:
    """``column OP constant`` with a monomorphic fast path.

    When an element's concrete type matches the constant's family the Python
    operator applies directly (numbers, dates, strings order exactly like
    :func:`sql_compare`); any other element falls back to the shared
    coercion helper so mixed columns keep identical semantics and errors.
    """
    py_op = _PY_OPS[op]
    test = _ORDERING_TESTS[op]
    if _is_plain_number(const):
        fast_types = (int, float)
    elif type(const) is Date:
        fast_types = (Date,)
    elif type(const) is str:
        fast_types = (str,)
    else:
        fast_types = ()

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif type(value) in fast_types:
                append(py_op(value, const))
            else:
                ordering = sql_compare(value, const)
                append(None if ordering is None else test(ordering))
        return out

    return kernel


def _equal_const_kernel(value_k: BatchKernel, const: Any, negated: bool) -> BatchKernel:
    """``column = constant`` / ``column <> constant`` with a fast path."""
    if _is_plain_number(const):
        fast_types = (int, float)
    elif type(const) is Date:
        fast_types = (Date,)
    elif type(const) is str:
        fast_types = (str,)
    else:
        fast_types = ()

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif type(value) in fast_types:
                equal = value == const
                append(not equal if negated else equal)
            else:
                equal = sql_equal(value, const)
                if equal is None:
                    append(None)
                else:
                    append(not equal if negated else equal)
        return out

    return kernel


def _arith_kernel(left: BatchKernel, right: BatchKernel, op: str) -> BatchKernel:
    """Column-vs-column ``+ - * /`` with NULL propagation and date math."""
    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for a, b in zip(left(batch, outers), right(batch, outers)):
            append(_arith_value(a, b, op))
        return out

    return kernel


def _arith_const_kernel(
    value_k: BatchKernel, const: Any, op: str, const_right: bool
) -> BatchKernel:
    """``column OP constant`` (or flipped) arithmetic with a numeric fast path."""
    numeric_const = _is_plain_number(const)
    if const_right:
        if numeric_const and op == "+":
            fast = lambda a: a + const  # noqa: E731
        elif numeric_const and op == "-":
            fast = lambda a: a - const  # noqa: E731
        elif numeric_const and op == "*":
            fast = lambda a: a * const  # noqa: E731
        elif numeric_const and op == "/" and const != 0:
            fast = lambda a: a / const  # noqa: E731
        else:
            fast = None
    elif numeric_const and op == "+":
        fast = lambda b: const + b  # noqa: E731
    elif numeric_const and op == "-":
        fast = lambda b: const - b  # noqa: E731
    elif numeric_const and op == "*":
        fast = lambda b: const * b  # noqa: E731
    else:
        fast = None

    def kernel(batch: RowBatch, outers: tuple) -> list:
        out = []
        append = out.append
        for value in value_k(batch, outers):
            if value is None:
                append(None)
            elif fast is not None and (type(value) is float or type(value) is int):
                append(fast(value))
            elif const_right:
                append(_arith_value(value, const, op))
            else:
                append(_arith_value(const, value, op))
        return out

    return kernel


def _arith_value(a: Any, b: Any, op: str) -> Any:
    """One arithmetic evaluation, mirroring the row interpreter exactly."""
    if a is None or b is None:
        return None
    if isinstance(a, Date) or isinstance(b, Date):
        return _date_arithmetic(a, b, op)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b
