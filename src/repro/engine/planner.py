"""FROM-clause planning: scan, filter push-down and greedy hash joins.

The planner turns the FROM clause plus the conjunctive WHERE predicate into a
:class:`JoinPipeline`:

* each base table / view / derived table becomes a :class:`SourcePlan` with
  its single-relation filters pushed down (including primary-key point
  look-ups when a filter compares the key against a per-run constant),
* equality predicates between two relations become hash-join edges,
* the remaining conjuncts are applied as residual filters as soon as every
  relation they mention is available.

Join order is chosen greedily at prepare time.  In costed mode (the default,
``REPRO_COMPILE_COST=1``) each relation's cardinality is scaled by the
estimated selectivity of its pushed-down predicates using the database's
collected statistics (:mod:`repro.compile.cost`): start from the smallest
*filtered* relation and repeatedly attach the connected relation with the
smallest filtered estimate.  In uncosted mode the historic structural order
is used — raw base-table cardinalities, first connected candidate — which is
the differential oracle the costed order is tested against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..compile.cost import predicate_selectivity
from ..errors import ExecutionError
from ..sql import ast
from .config import DEFAULT_BATCH_SIZE
from .expressions import (
    CompiledExpr,
    ExpressionCompiler,
    Scope,
    contains_subquery,
    referenced_columns,
)
from .vector import (
    BatchExpressionCompiler,
    BatchKernel,
    RowBatch,
    apply_batch_predicates,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .executor import ExecutionContext, PreparedSelect


def _chunked(rows: list[tuple], batch_size: int):
    """Slice a row list into bounded windows (the streaming batch currency)."""
    for start in range(0, len(rows), batch_size):
        yield rows[start : start + batch_size]


def _join_key_column(fns: list, rows: list[tuple], outers: tuple):
    """Key-per-row list for a hash-join side, computed columnwise.

    ``fns`` are batch kernels: single-key joins use the kernel's column
    directly, multi-key joins zip the key columns into tuples — the batch
    analogue of ``tuple(fn(row, outers) for fn in fns)`` per row.
    """
    batch = RowBatch(rows)
    columns = [fn(batch, outers) for fn in fns]
    if len(columns) == 1:
        return columns[0]
    return list(zip(*columns))


class _OuterSentinel:
    """Marker: a column resolved against an enclosing query (or a parameter)."""


_OUTER = _OuterSentinel()


# ---------------------------------------------------------------------------
# Source plans
# ---------------------------------------------------------------------------


class SourcePlan:
    """A planned FROM-clause relation producing rows at run time."""

    def __init__(self, schema: list[tuple[Optional[str], str]], bindings: set[str]) -> None:
        self.schema = schema
        self.bindings = bindings
        self._filters: list[CompiledExpr] = []
        # pushed-down predicates compiled as batch kernels (vectorized mode);
        # a plan populates exactly one of the two lists
        self._batch_filters: list[BatchKernel] = []

    def add_filter(self, predicate: CompiledExpr) -> None:
        self._filters.append(predicate)

    def add_batch_filter(self, kernel: BatchKernel) -> None:
        self._batch_filters.append(kernel)

    def _apply_filters(
        self,
        rows: list[tuple],
        outers: tuple,
        col_source=None,
        typed_source=None,
    ) -> list[tuple]:
        if self._batch_filters:
            batch = apply_batch_predicates(
                RowBatch(rows, col_source, typed_source), self._batch_filters, outers
            )
            out = batch.rows
            # never hand out the caller's own list (table heaps are shared)
            return list(out) if out is rows else out
        if not self._filters:
            return rows
        filters = self._filters
        return [
            row
            for row in rows
            if all(predicate(row, outers) is True for predicate in filters)
        ]

    def _filter_batch(self, batch: RowBatch, outers: tuple) -> RowBatch:
        """Apply the pushed-down filters to a batch, compacting by selection."""
        if self._batch_filters:
            batch = apply_batch_predicates(batch, self._batch_filters, outers)
        if self._filters:
            filters = self._filters
            batch = RowBatch(
                [
                    row
                    for row in batch.rows
                    if all(predicate(row, outers) is True for predicate in filters)
                ]
            )
        return batch

    def rows(self, outers: tuple) -> list[tuple]:
        raise NotImplementedError

    def batch(self, outers: tuple) -> RowBatch:
        """The plan's filtered rows as one :class:`RowBatch`.

        Entry point of the vectorized executor; :class:`TableSource`
        overrides it so a full scan keeps its typed columns and its
        selection view alive end to end instead of materializing row
        tuples between the scan and the projection/aggregation stage.
        """
        return RowBatch(self.rows(outers))

    def estimate(self) -> int:
        raise NotImplementedError

    def children(self) -> list["PreparedSelect"]:
        """Nested prepared selects (views / derived tables)."""
        return []


class TableSource(SourcePlan):
    """A scan over a base table with pushed-down filters.

    When one of the pushed filters is ``<primary key column> = <expr>`` and
    the expression does not reference this table, the scan becomes a point
    look-up in a lazily-built hash index on that key column.

    With ``typed=True`` (vectorized mode with ``REPRO_ENGINE_TYPED=1``) the
    scan batch additionally exposes the table's version-cached
    :class:`~repro.engine.columns.TypedColumn` payloads, which is what lets
    downstream kernels run their specialized loops.
    """

    def __init__(self, table, binding: str, typed: bool = False) -> None:
        schema = [(binding, column.name) for column in table.schema.columns]
        super().__init__(schema, {binding.lower()})
        self.table = table
        self._typed = typed
        self._key_lookup: Optional[tuple[int, CompiledExpr]] = None

    def set_key_lookup(self, column_index: int, value_fn: CompiledExpr) -> None:
        self._key_lookup = (column_index, value_fn)

    @property
    def has_key_lookup(self) -> bool:
        return self._key_lookup is not None

    def estimate(self) -> int:
        if self._key_lookup is not None:
            return 1
        return max(len(self.table.rows), 1)

    def rows(self, outers: tuple) -> list[tuple]:
        if self._key_lookup is not None:
            column_index, value_fn = self._key_lookup
            value = value_fn((), outers)
            candidates = self._hash_index(column_index).get(value, [])
            return self._apply_filters(list(candidates), outers)
        # full scan: batch kernels read the table's version-cached column
        # arrays (and typed payloads) directly instead of gathering per query
        filtered = self._apply_filters(
            self.table.rows,
            outers,
            col_source=self.table.column_array,
            typed_source=self.table.typed_column if self._typed else None,
        )
        return list(filtered) if filtered is self.table.rows else filtered

    def batch(self, outers: tuple) -> RowBatch:
        if self._key_lookup is not None:
            return RowBatch(self.rows(outers))
        scan = RowBatch(
            self.table.rows,
            col_source=self.table.column_array,
            typed_source=self.table.typed_column if self._typed else None,
        )
        return self._filter_batch(scan, outers)

    def _hash_index(self, column_index: int) -> dict:
        cache = getattr(self.table, "_planner_indexes", None)
        if cache is None:
            cache = {}
            setattr(self.table, "_planner_indexes", cache)
        entry = cache.get(column_index)
        version = getattr(self.table, "version", len(self.table.rows))
        if entry is None or entry[1] != version:
            index: dict = {}
            for row in self.table.rows:
                index.setdefault(row[column_index], []).append(row)
            cache[column_index] = (index, version)
            return index
        return entry[0]


class PreparedSource(SourcePlan):
    """A derived table or view backed by a nested :class:`PreparedSelect`."""

    def __init__(self, prepared: "PreparedSelect", binding: str) -> None:
        schema = [(binding, column) for column in prepared.output_columns]
        super().__init__(schema, {binding.lower()})
        self._prepared = prepared

    def children(self) -> list["PreparedSelect"]:
        return [self._prepared]

    def estimate(self) -> int:
        return self._prepared.estimate()

    def rows(self, outers: tuple) -> list[tuple]:
        return self._apply_filters(list(self._prepared.run(outers)), outers)


class JoinSource(SourcePlan):
    """An explicit ``A [LEFT] JOIN B ON cond`` treated as one composite source.

    In vectorized mode (``vectorized=True``) the ON-clause machinery is
    batch-compiled: build/probe key columns come from batch kernels, the
    residual condition evaluates once over the whole candidate batch, and
    LEFT-join null padding is reconstructed from a candidate→left-position
    index array — no per-row closure dispatch anywhere on the join path.
    """

    def __init__(
        self,
        left: SourcePlan,
        right: SourcePlan,
        join_type: ast.JoinType,
        key_pairs: list[tuple[CompiledExpr, CompiledExpr]],
        residual: Optional[CompiledExpr],
        vectorized: bool = False,
    ) -> None:
        super().__init__(list(left.schema) + list(right.schema), left.bindings | right.bindings)
        self._left = left
        self._right = right
        self._join_type = join_type
        self._key_pairs = key_pairs
        self._residual = residual
        self._right_width = len(right.schema)
        self._vectorized = vectorized

    def children(self) -> list["PreparedSelect"]:
        return self._left.children() + self._right.children()

    def estimate(self) -> int:
        return max(self._left.estimate(), self._right.estimate())

    def _rows_vectorized(self, outers: tuple) -> list[tuple]:
        """Batch ON-clause join: key columns, one residual mask, index padding.

        Candidate pairs are collected in exactly the row-mode nesting order
        together with a parallel array of left-row positions; the residual
        (a batch kernel here) is evaluated once over the candidate batch —
        never over unmatched rows, which row mode also never sees — and for
        LEFT joins the output is rebuilt in one pass over the left side,
        padding rows whose candidates all failed.  Output order is therefore
        bit-identical to the row-at-a-time loop.
        """
        left_rows = self._left.rows(outers)
        right_rows = self._right.rows(outers)
        candidates: list[tuple] = []
        cand_left_pos: list[int] = []
        if self._key_pairs:
            probe_fns = [pair[0] for pair in self._key_pairs]
            build_fns = [pair[1] for pair in self._key_pairs]
            table: dict = {}
            for row, key in zip(
                right_rows, _join_key_column(build_fns, right_rows, outers)
            ):
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
            get = table.get
            for position, (left_row, key) in enumerate(
                zip(left_rows, _join_key_column(probe_fns, left_rows, outers))
            ):
                bucket = get(key)
                if bucket:
                    for right_row in bucket:
                        candidates.append(left_row + right_row)
                        cand_left_pos.append(position)
        else:
            for position, left_row in enumerate(left_rows):
                for right_row in right_rows:
                    candidates.append(left_row + right_row)
                    cand_left_pos.append(position)
        mask = None
        if self._residual is not None and candidates:
            mask = self._residual(RowBatch(candidates), outers)
        if self._join_type is not ast.JoinType.LEFT:
            if mask is None:
                return candidates
            return [row for row, keep in zip(candidates, mask) if keep is True]
        null_pad = (None,) * self._right_width
        combined: list[tuple] = []
        index = 0
        total = len(candidates)
        for position, left_row in enumerate(left_rows):
            matched = False
            while index < total and cand_left_pos[index] == position:
                if mask is None or mask[index] is True:
                    combined.append(candidates[index])
                    matched = True
                index += 1
            if not matched:
                combined.append(left_row + null_pad)
        return combined

    def rows(self, outers: tuple) -> list[tuple]:
        if self._vectorized:
            return self._apply_filters(self._rows_vectorized(outers), outers)
        left_rows = self._left.rows(outers)
        right_rows = self._right.rows(outers)
        null_pad = (None,) * self._right_width
        combined: list[tuple] = []
        keep_unmatched = self._join_type is ast.JoinType.LEFT
        if self._key_pairs:
            probe_fns = [pair[0] for pair in self._key_pairs]
            build_fns = [pair[1] for pair in self._key_pairs]
            table: dict[tuple, list[tuple]] = {}
            for row in right_rows:
                key = tuple(fn(row, outers) for fn in build_fns)
                table.setdefault(key, []).append(row)
            for left_row in left_rows:
                key = tuple(fn(left_row, outers) for fn in probe_fns)
                matched = False
                for right_row in table.get(key, ()):
                    candidate = left_row + right_row
                    if self._residual is None or self._residual(candidate, outers) is True:
                        combined.append(candidate)
                        matched = True
                if not matched and keep_unmatched:
                    combined.append(left_row + null_pad)
        else:
            for left_row in left_rows:
                matched = False
                for right_row in right_rows:
                    candidate = left_row + right_row
                    if self._residual is None or self._residual(candidate, outers) is True:
                        combined.append(candidate)
                        matched = True
                if not matched and keep_unmatched:
                    combined.append(left_row + null_pad)
        return self._apply_filters(combined, outers)


# ---------------------------------------------------------------------------
# Join pipeline over the comma-separated FROM list
# ---------------------------------------------------------------------------


class _JoinStep:
    """One greedy hash-join step decided at prepare time."""

    def __init__(
        self,
        source: SourcePlan,
        probe_fns: list[CompiledExpr],
        build_fns: list[CompiledExpr],
        residuals: list[CompiledExpr],
    ) -> None:
        self.source = source
        self.probe_fns = probe_fns
        self.build_fns = build_fns
        self.residuals = residuals


class JoinPipeline:
    """Executes the planned sequence of scans, hash joins and residual filters.

    In vectorized mode (``vectorized=True``) the probe/build key functions
    and residual filters are batch kernels: join keys are computed as key
    *columns* over whole row windows, residuals via
    :func:`~repro.engine.vector.apply_batch_predicates`.  The streaming
    spine is :meth:`iter_batches`, which emits bounded row chunks
    (``batch_size`` rows) so ``LIMIT`` consumers touch O(batch) rows.
    """

    def __init__(
        self,
        first: SourcePlan,
        steps: list[_JoinStep],
        final_residuals: list,
        schema: list[tuple[Optional[str], str]],
        vectorized: bool = False,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self._first = first
        self._steps = steps
        self._final_residuals = final_residuals
        self.schema = schema
        self._vectorized = vectorized
        self._batch_size = batch_size

    def execute_batch(self, outers: tuple) -> RowBatch:
        """The pipeline's joined rows as one :class:`RowBatch` (vectorized).

        With no join steps the first source's batch flows through directly,
        so a filtered base-table scan keeps its typed columns and selection
        view for the projection/aggregation stage; join outputs are plain
        row-tuple batches (join intermediates have no stable storage
        columns to specialize over).
        """
        if not self._steps:
            batch = self._first.batch(outers)
            if self._final_residuals and batch.n:
                batch = apply_batch_predicates(batch, self._final_residuals, outers)
            return batch
        return RowBatch(self._execute_vectorized(outers))

    def execute(self, outers: tuple) -> list[tuple]:
        if self._vectorized:
            return self._execute_vectorized(outers)
        current = self._first.rows(outers)
        for step in self._steps:
            if not current:
                return []
            current = self._execute_step(step, current, outers)
        if self._final_residuals:
            residuals = self._final_residuals
            current = [
                row
                for row in current
                if all(predicate(row, outers) is True for predicate in residuals)
            ]
        return current

    def _execute_vectorized(self, outers: tuple) -> list[tuple]:
        current = self._first.rows(outers)
        for step in self._steps:
            if not current:
                return []
            current = self._execute_step_batch(step, current, outers)
        if self._final_residuals and current:
            current = apply_batch_predicates(
                RowBatch(current), self._final_residuals, outers
            ).rows
        return current

    @staticmethod
    def _execute_step_batch(
        step: _JoinStep, current: list[tuple], outers: tuple
    ) -> list[tuple]:
        new_rows = step.source.rows(outers)
        joined: list[tuple] = []
        if step.probe_fns:
            table: dict = {}
            for row, key in zip(new_rows, _join_key_column(step.build_fns, new_rows, outers)):
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
            get = table.get
            for left_row, key in zip(
                current, _join_key_column(step.probe_fns, current, outers)
            ):
                bucket = get(key)
                if bucket:
                    for right_row in bucket:
                        joined.append(left_row + right_row)
        else:
            for left_row in current:
                for right_row in new_rows:
                    joined.append(left_row + right_row)
        if step.residuals and joined:
            joined = apply_batch_predicates(
                RowBatch(joined), step.residuals, outers
            ).rows
        return joined

    def iter_rows(self, outers: tuple):
        """Yield joined rows lazily along the pipeline's left spine.

        Each source still materializes its own (filtered) scan, and each
        join step builds its right-side hash table up front; what is lazy is
        the join *output*: left rows flow through one at a time, so the
        first joined row is produced without computing the full cross
        product — the engine's streaming path
        (:meth:`repro.engine.executor.PreparedSelect.stream`).
        """
        current = iter(self._first.rows(outers))
        for step in self._steps:
            current = self._iter_step(step, current, outers)
        if self._final_residuals:
            residuals = self._final_residuals
            current = (
                row
                for row in current
                if all(predicate(row, outers) is True for predicate in residuals)
            )
        yield from current

    def iter_batches(self, outers: tuple, batch_size: Optional[int] = None):
        """Yield joined rows lazily as bounded chunks (vectorized streaming).

        The batch analogue of :meth:`iter_rows`: each source still
        materializes its own (filtered) scan and each join step builds its
        hash table when first pulled, but left rows flow through the spine
        ``batch_size`` at a time and every yielded chunk is re-bounded to at
        most ``batch_size`` rows — an early-``LIMIT`` consumer therefore
        materializes O(batch) rows, never the join output.
        """
        size = batch_size or self._batch_size
        current = _chunked(self._first.rows(outers), size)
        for step in self._steps:
            current = self._iter_step_batch(step, current, outers, size)
        for chunk in current:
            if self._final_residuals:
                chunk = apply_batch_predicates(
                    RowBatch(chunk), self._final_residuals, outers
                ).rows
            if chunk:
                yield chunk

    @staticmethod
    def _iter_step_batch(step: _JoinStep, current, outers: tuple, batch_size: int):
        table: Optional[dict] = None
        new_rows: list[tuple] = []
        for chunk in current:
            if table is None:
                # built on first demand, exactly like the row-mode spine
                new_rows = step.source.rows(outers)
                table = {}
                if step.probe_fns:
                    for row, key in zip(
                        new_rows, _join_key_column(step.build_fns, new_rows, outers)
                    ):
                        bucket = table.get(key)
                        if bucket is None:
                            table[key] = [row]
                        else:
                            bucket.append(row)
            joined: list[tuple] = []
            if step.probe_fns:
                get = table.get
                for left_row, key in zip(
                    chunk, _join_key_column(step.probe_fns, chunk, outers)
                ):
                    bucket = get(key)
                    if bucket:
                        for right_row in bucket:
                            joined.append(left_row + right_row)
            else:
                for left_row in chunk:
                    for right_row in new_rows:
                        joined.append(left_row + right_row)
            if step.residuals and joined:
                joined = apply_batch_predicates(
                    RowBatch(joined), step.residuals, outers
                ).rows
            # one-to-many joins can fan a chunk out past the bound; re-slice
            yield from _chunked(joined, batch_size)

    @staticmethod
    def _iter_step(step: _JoinStep, current, outers: tuple):
        new_rows = step.source.rows(outers)
        residuals = step.residuals
        if step.probe_fns:
            table: dict[tuple, list[tuple]] = {}
            for row in new_rows:
                key = tuple(fn(row, outers) for fn in step.build_fns)
                table.setdefault(key, []).append(row)
            for left_row in current:
                key = tuple(fn(left_row, outers) for fn in step.probe_fns)
                bucket = table.get(key)
                if not bucket:
                    continue
                for right_row in bucket:
                    joined = left_row + right_row
                    if residuals and not all(
                        predicate(joined, outers) is True for predicate in residuals
                    ):
                        continue
                    yield joined
        else:
            for left_row in current:
                for right_row in new_rows:
                    joined = left_row + right_row
                    if residuals and not all(
                        predicate(joined, outers) is True for predicate in residuals
                    ):
                        continue
                    yield joined

    @staticmethod
    def _execute_step(step: _JoinStep, current: list[tuple], outers: tuple) -> list[tuple]:
        new_rows = step.source.rows(outers)
        joined: list[tuple] = []
        if step.probe_fns:
            table: dict[tuple, list[tuple]] = {}
            for row in new_rows:
                key = tuple(fn(row, outers) for fn in step.build_fns)
                table.setdefault(key, []).append(row)
            for left_row in current:
                key = tuple(fn(left_row, outers) for fn in step.probe_fns)
                bucket = table.get(key)
                if not bucket:
                    continue
                for right_row in bucket:
                    joined.append(left_row + right_row)
        else:
            for left_row in current:
                for right_row in new_rows:
                    joined.append(left_row + right_row)
        if step.residuals:
            residuals = step.residuals
            joined = [
                row
                for row in joined
                if all(predicate(row, outers) is True for predicate in residuals)
            ]
        return joined

    def children(self) -> list["PreparedSelect"]:
        collected = list(self._first.children())
        for step in self._steps:
            collected.extend(step.source.children())
        return collected

    def estimate(self) -> int:
        estimate = self._first.estimate()
        for step in self._steps:
            estimate = max(estimate, step.source.estimate())
        return estimate


class EmptyPipeline:
    """FROM-less queries (``SELECT 1``) produce exactly one empty row."""

    schema: list[tuple[Optional[str], str]] = []

    def execute(self, outers: tuple) -> list[tuple]:
        return [()]

    def execute_batch(self, outers: tuple) -> RowBatch:
        """The single empty row as a one-row batch."""
        return RowBatch([()])

    def iter_rows(self, outers: tuple):
        """The single empty row, as a (trivially lazy) iterator."""
        yield ()

    def iter_batches(self, outers: tuple, batch_size: Optional[int] = None):
        """The single empty row as a one-row batch."""
        yield [()]

    def children(self) -> list["PreparedSelect"]:
        return []

    def estimate(self) -> int:
        return 1


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class Planner:
    """Builds a :class:`JoinPipeline` for a SELECT's FROM/WHERE clauses.

    Every :class:`Scope` the planner creates is recorded in
    :attr:`created_scopes`; the executor inspects their ``uses_parent`` flags
    to decide whether the resulting plan is correlated with the enclosing
    query (and therefore whether its result may be cached).
    """

    def __init__(
        self,
        context: "ExecutionContext",
        parent_scope: Optional[Scope],
        facts=None,
    ) -> None:
        self._context = context
        self._parent_scope = parent_scope
        self.created_scopes: list[Scope] = []
        self._binding_columns: dict[str, set[str]] = {}
        vector = context.database.vector
        self._vectorized = vector.enabled
        self._batch_size = vector.batch_size
        self._typed = vector.enabled and vector.typed
        self._costed = context.database.cost.enabled
        self._facts = facts
        # binding (lower) -> column names (lower) the analyzer proved NOT
        # NULL; populated as base tables are planned, cleared for relations
        # on the null-padded side of a LEFT join
        self._proven_bindings: dict[str, frozenset[str]] = {}

    def _new_scope(self, columns: list[tuple[Optional[str], str]]) -> Scope:
        proven_bindings = self._proven_bindings
        if proven_bindings:
            proven = frozenset(
                index
                for index, (binding, column) in enumerate(columns)
                if binding is not None
                and column.lower() in proven_bindings.get(binding.lower(), ())
            )
        else:
            proven = frozenset()
        scope = Scope(columns, parent=self._parent_scope, proven=proven)
        self.created_scopes.append(scope)
        return scope

    def _compiler(self, columns: list[tuple[Optional[str], str]]) -> ExpressionCompiler:
        return ExpressionCompiler(self._new_scope(columns), self._context)

    def _mode_compiler(self, columns: list[tuple[Optional[str], str]]):
        """The compiler matching the execution mode: batch kernels when
        vectorized, row closures otherwise (same scope bookkeeping)."""
        if self._vectorized:
            return BatchExpressionCompiler(self._new_scope(columns), self._context)
        return ExpressionCompiler(self._new_scope(columns), self._context)

    def _add_filter(self, source: SourcePlan, compiled) -> None:
        """Attach a compiled predicate in the slot matching its mode."""
        if self._vectorized:
            source.add_batch_filter(compiled)
        else:
            source.add_filter(compiled)

    # -- public API ----------------------------------------------------------

    def plan(
        self, select: ast.Select
    ) -> tuple[JoinPipeline | EmptyPipeline, Scope, list[ast.Expression]]:
        """Plan the FROM/WHERE part of a query.

        Returns the pipeline, the scope describing the joined row layout and
        the WHERE conjuncts containing sub-queries (evaluated afterwards by
        the executor because they cannot become join edges or push-downs).
        """
        if not select.from_items:
            scope = self._new_scope([])
            return EmptyPipeline(), scope, ast.split_conjuncts(select.where)

        sources = [self._plan_from_item(item) for item in select.from_items]

        plain: list[ast.Expression] = []
        subquery_conjuncts: list[ast.Expression] = []
        for conjunct in ast.split_conjuncts(select.where):
            if contains_subquery(conjunct):
                subquery_conjuncts.append(conjunct)
            else:
                plain.append(conjunct)

        self._binding_columns = {}
        for source in sources:
            for binding, column in source.schema:
                self._binding_columns.setdefault(binding.lower(), set()).add(column.lower())

        pushdown, join_edges, residual = self._classify(plain, sources)
        for source, predicates in pushdown.items():
            self._apply_pushdown(source, predicates)

        estimates = self._cost_estimates(sources, pushdown)
        pipeline = self._order_joins(sources, join_edges, residual, estimates)
        scope = self._new_scope(pipeline.schema)
        return pipeline, scope, subquery_conjuncts

    # -- FROM items ----------------------------------------------------------

    def _plan_from_item(self, item: ast.FromItem) -> SourcePlan:
        if isinstance(item, ast.TableRef):
            return self._plan_table(item)
        if isinstance(item, ast.SubqueryRef):
            prepared = self._context.prepare_subquery(
                item.query, self._parent_scope, facts=self._facts
            )
            return PreparedSource(prepared, item.alias)
        if isinstance(item, ast.Join):
            return self._plan_join(item)
        raise ExecutionError(f"unsupported FROM item {type(item).__name__}")

    def _plan_table(self, item: ast.TableRef) -> SourcePlan:
        catalog = self._context.database.catalog
        binding = item.alias or item.name
        if catalog.has_view(item.name):
            prepared = self._context.prepare_subquery(
                catalog.view(item.name), self._parent_scope, facts=self._facts
            )
            return PreparedSource(prepared, binding)
        table = catalog.table(item.name)
        if self._facts is not None:
            proven = self._facts.proven_not_null.get(item.name.lower())
            if proven:
                self._proven_bindings[binding.lower()] = proven
        return TableSource(table, binding, typed=self._typed)

    def _plan_join(self, item: ast.Join) -> SourcePlan:
        left = self._plan_from_item(item.left)
        right = self._plan_from_item(item.right)
        if item.join_type is ast.JoinType.LEFT:
            # the right side is null-padded for unmatched left rows, so its
            # schema-proven NOT NULL guarantees do not survive the join
            for binding in right.bindings:
                self._proven_bindings.pop(binding, None)
        key_pairs: list[tuple[CompiledExpr, CompiledExpr]] = []
        residual_parts: list[ast.Expression] = []
        if item.condition is not None:
            left_compiler = self._mode_compiler(left.schema)
            right_compiler = self._mode_compiler(right.schema)
            for conjunct in ast.split_conjuncts(item.condition):
                pair = self._equi_join_pair(conjunct, left, right)
                if pair is not None:
                    left_expr, right_expr = pair
                    key_pairs.append(
                        (left_compiler.compile(left_expr), right_compiler.compile(right_expr))
                    )
                else:
                    residual_parts.append(conjunct)
        residual = None
        if residual_parts:
            combined_compiler = self._mode_compiler(list(left.schema) + list(right.schema))
            residual = combined_compiler.compile_predicate(ast.and_(*residual_parts))
        return JoinSource(
            left, right, item.join_type, key_pairs, residual, vectorized=self._vectorized
        )

    def _equi_join_pair(
        self, conjunct: ast.Expression, left: SourcePlan, right: SourcePlan
    ) -> Optional[tuple[ast.Expression, ast.Expression]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        if contains_subquery(conjunct):
            return None
        local_columns: dict[str, set[str]] = {}
        for source in (left, right):
            for binding, column in source.schema:
                local_columns.setdefault(binding.lower(), set()).add(column.lower())
        left_bindings = self._expression_bindings(conjunct.left, local_columns)
        right_bindings = self._expression_bindings(conjunct.right, local_columns)
        if left_bindings is None or right_bindings is None:
            return None
        if left_bindings and right_bindings:
            if left_bindings <= left.bindings and right_bindings <= right.bindings:
                return conjunct.left, conjunct.right
            if left_bindings <= right.bindings and right_bindings <= left.bindings:
                return conjunct.right, conjunct.left
        return None

    # -- WHERE classification --------------------------------------------------

    def _expression_bindings(
        self,
        expr: ast.Expression,
        binding_columns: Optional[dict[str, set[str]]] = None,
    ) -> Optional[set[str]]:
        """Bindings referenced by an expression.

        Columns that cannot be attributed to any local binding are treated as
        outer references when an enclosing scope exists (they do not
        contribute a binding); when no enclosing scope exists the result is
        ``None`` which keeps the predicate out of push-down and join-edge
        classification (the compile step will report the unknown column).
        """
        if binding_columns is None:
            binding_columns = self._binding_columns
        bindings: set[str] = set()
        for column in referenced_columns(expr):
            attributed = self._attribute_binding(column, binding_columns)
            if attributed is _OUTER:
                continue
            if attributed is None:
                return None
            bindings.add(attributed)
        return bindings

    def _attribute_binding(self, column: ast.Column, binding_columns: dict[str, set[str]]):
        if column.name.startswith("$"):
            return _OUTER
        name = column.name.lower()
        if column.table is not None:
            table = column.table.lower()
            if table in binding_columns:
                return table
            return _OUTER if self._parent_scope is not None else None
        matches = [
            binding for binding, columns in binding_columns.items() if name in columns
        ]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            return _OUTER if self._parent_scope is not None else None
        # ambiguous unqualified reference: let the compile step raise
        return None

    def _classify(
        self, conjuncts: list[ast.Expression], sources: list[SourcePlan]
    ) -> tuple[
        dict[SourcePlan, list[ast.Expression]],
        list[tuple[set[str], ast.Expression, set[str], ast.Expression]],
        list[ast.Expression],
    ]:
        by_binding = {binding: source for source in sources for binding in source.bindings}
        pushdown: dict[SourcePlan, list[ast.Expression]] = {}
        join_edges: list[tuple[set[str], ast.Expression, set[str], ast.Expression]] = []
        residual: list[ast.Expression] = []
        for conjunct in conjuncts:
            bindings = self._expression_bindings(conjunct)
            if bindings is None:
                residual.append(conjunct)
                continue
            if len(bindings) <= 1:
                source = by_binding[next(iter(bindings))] if bindings else sources[0]
                pushdown.setdefault(source, []).append(conjunct)
                continue
            edge = self._join_edge(conjunct)
            if edge is not None:
                join_edges.append(edge)
            else:
                residual.append(conjunct)
        return pushdown, join_edges, residual

    def _join_edge(self, conjunct: ast.Expression):
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        left_bindings = self._expression_bindings(conjunct.left)
        right_bindings = self._expression_bindings(conjunct.right)
        if not left_bindings or not right_bindings:
            return None
        if left_bindings.isdisjoint(right_bindings):
            return left_bindings, conjunct.left, right_bindings, conjunct.right
        return None

    # -- push-down ---------------------------------------------------------------

    def _apply_pushdown(self, source: SourcePlan, predicates: list[ast.Expression]) -> None:
        compiler = self._mode_compiler(source.schema)
        for predicate in predicates:
            if isinstance(source, TableSource) and self._try_key_lookup(source, predicate):
                continue
            self._add_filter(source, compiler.compile_predicate(predicate))

    def _try_key_lookup(self, source: TableSource, predicate: ast.Expression) -> bool:
        if source.has_key_lookup:
            return False
        primary_key = source.table.schema.primary_key
        if len(primary_key) != 1:
            return False
        key_column = primary_key[0].lower()
        if not (isinstance(predicate, ast.BinaryOp) and predicate.op == "="):
            return False
        for column_side, value_side in (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        ):
            if not isinstance(column_side, ast.Column):
                continue
            if column_side.name.lower() != key_column:
                continue
            if self._references_source(value_side, source):
                continue
            value_compiler = self._compiler([])
            try:
                value_fn = value_compiler.compile(value_side)
            except ExecutionError:
                continue
            column_index = source.table.schema.column_index(key_column)
            source.set_key_lookup(column_index, value_fn)
            return True
        return False

    def _references_source(self, expr: ast.Expression, source: TableSource) -> bool:
        for column in referenced_columns(expr):
            if column.name.startswith("$"):
                continue
            if column.table is not None:
                if column.table.lower() in source.bindings:
                    return True
                continue
            if source.table.schema.has_column(column.name):
                return True
        return False

    # -- join ordering -----------------------------------------------------------

    def _cost_estimates(
        self,
        sources: list[SourcePlan],
        pushdown: dict[SourcePlan, list[ast.Expression]],
    ) -> Optional[dict[int, float]]:
        """Filtered cardinality per source, keyed by ``id(source)``.

        Only computed in costed mode: the raw row count of each source is
        scaled by the estimated selectivity of its pushed-down predicates
        (with table statistics where collected), so a big-but-filtered table
        can order before a small-but-unfiltered one.  ``None`` in uncosted
        mode — join ordering then falls back to raw :meth:`SourcePlan.estimate`.
        """
        if not self._costed:
            return None
        statistics = self._context.database.statistics()
        estimates: dict[int, float] = {}
        for source in sources:
            table_stats = None
            if isinstance(source, TableSource):
                table_stats = statistics.table(source.table.schema.name)
            predicate = ast.and_(*pushdown.get(source, []))
            selectivity = predicate_selectivity(predicate, table_stats)
            estimates[id(source)] = max(float(source.estimate()) * selectivity, 1.0)
        return estimates

    def _choose_next(
        self,
        remaining: list[SourcePlan],
        placed_bindings: set[str],
        unused_edges: list,
        estimates: Optional[dict[int, float]],
    ) -> int:
        """Index of the next source to join into the pipeline.

        Uncosted: the first source (in size order) connected to the placed
        set through a join edge, matching the historic greedy order exactly.
        Costed: the connected source with the smallest filtered estimate —
        unconnected sources (cross products) only when nothing connects.
        """
        if estimates is None:
            for index, candidate in enumerate(remaining):
                if self._connecting_edges(candidate, placed_bindings, unused_edges):
                    return index
            return 0
        best_index = 0
        best_key: Optional[tuple[int, float]] = None
        for index, candidate in enumerate(remaining):
            connected = bool(
                self._connecting_edges(candidate, placed_bindings, unused_edges)
            )
            key = (0 if connected else 1, estimates[id(candidate)])
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index

    def _order_joins(
        self,
        sources: list[SourcePlan],
        join_edges: list[tuple[set[str], ast.Expression, set[str], ast.Expression]],
        residual: list[ast.Expression],
        estimates: Optional[dict[int, float]] = None,
    ) -> JoinPipeline:
        if estimates is None:
            remaining = sorted(sources, key=lambda source: source.estimate())
        else:
            remaining = sorted(sources, key=lambda source: estimates[id(source)])
        first = remaining.pop(0)
        placed_bindings = set(first.bindings)
        placed_schema = list(first.schema)
        steps: list[_JoinStep] = []
        unused_edges = list(join_edges)
        pending_residuals = list(residual)

        pending_residuals, immediate = self._split_ready(pending_residuals, placed_bindings)
        if immediate:
            compiler = self._mode_compiler(placed_schema)
            for predicate in immediate:
                self._add_filter(first, compiler.compile_predicate(predicate))

        while remaining:
            chosen_index = self._choose_next(
                remaining, placed_bindings, unused_edges, estimates
            )
            candidate = remaining.pop(chosen_index)
            edges = self._connecting_edges(candidate, placed_bindings, unused_edges)
            for edge in edges:
                unused_edges.remove(edge)

            probe_fns: list = []
            build_fns: list = []
            current_compiler = self._mode_compiler(placed_schema)
            candidate_compiler = self._mode_compiler(candidate.schema)
            for left_bindings, left_expr, right_bindings, right_expr in edges:
                if left_bindings <= placed_bindings:
                    probe_fns.append(current_compiler.compile(left_expr))
                    build_fns.append(candidate_compiler.compile(right_expr))
                else:
                    probe_fns.append(current_compiler.compile(right_expr))
                    build_fns.append(candidate_compiler.compile(left_expr))

            placed_bindings |= candidate.bindings
            placed_schema = placed_schema + list(candidate.schema)

            # edges now fully contained in the placed set become residual filters
            contained = [edge for edge in unused_edges if edge[0] | edge[2] <= placed_bindings]
            for edge in contained:
                unused_edges.remove(edge)
                pending_residuals.append(ast.BinaryOp("=", edge[1], edge[3]))

            pending_residuals, ready = self._split_ready(pending_residuals, placed_bindings)
            residual_fns: list = []
            if ready:
                combined_compiler = self._mode_compiler(placed_schema)
                residual_fns = [combined_compiler.compile_predicate(predicate) for predicate in ready]
            steps.append(_JoinStep(candidate, probe_fns, build_fns, residual_fns))

        final_residuals: list = []
        leftover = pending_residuals + [
            ast.BinaryOp("=", edge[1], edge[3]) for edge in unused_edges
        ]
        if leftover:
            final_compiler = self._mode_compiler(placed_schema)
            final_residuals = [final_compiler.compile_predicate(predicate) for predicate in leftover]
        return JoinPipeline(
            first,
            steps,
            final_residuals,
            placed_schema,
            vectorized=self._vectorized,
            batch_size=self._batch_size,
        )

    def _split_ready(
        self, residuals: list[ast.Expression], placed_bindings: set[str]
    ) -> tuple[list[ast.Expression], list[ast.Expression]]:
        pending: list[ast.Expression] = []
        ready: list[ast.Expression] = []
        for predicate in residuals:
            bindings = self._expression_bindings(predicate)
            if bindings is not None and bindings <= placed_bindings:
                ready.append(predicate)
            else:
                pending.append(predicate)
        return pending, ready

    @staticmethod
    def _connecting_edges(
        candidate: SourcePlan,
        placed_bindings: set[str],
        edges: list[tuple[set[str], ast.Expression, set[str], ast.Expression]],
    ) -> list[tuple[set[str], ast.Expression, set[str], ast.Expression]]:
        connecting = []
        for edge in edges:
            left_bindings, _, right_bindings, _ = edge
            if left_bindings <= placed_bindings and right_bindings <= candidate.bindings:
                connecting.append(edge)
            elif right_bindings <= placed_bindings and left_bindings <= candidate.bindings:
                connecting.append(edge)
        return connecting
