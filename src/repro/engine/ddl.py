"""Execution of DDL statements against the engine catalog."""

from __future__ import annotations

from ..errors import CatalogError
from ..sql import ast
from ..sql.types import SQLType
from .catalog import Catalog
from .functions import SQLFunction
from .storage import ColumnSchema, ForeignKey, Table, TableSchema


def execute_create_table(catalog: Catalog, statement: ast.CreateTable) -> Table:
    """Create a base table; MT-specific annotations are ignored by the engine."""
    columns = [
        ColumnSchema(
            name=column.name,
            sql_type=SQLType.from_name(column.type_name),
            not_null=column.not_null,
            default=column.default.value if isinstance(column.default, ast.Literal) else None,
        )
        for column in statement.columns
    ]
    primary_key: tuple[str, ...] = ()
    for constraint in statement.constraints:
        if constraint.kind is ast.ConstraintKind.PRIMARY_KEY:
            primary_key = constraint.columns
    schema = TableSchema(name=statement.name, columns=columns, primary_key=primary_key)
    table = catalog.create_table(schema)
    for constraint in statement.constraints:
        if constraint.kind is ast.ConstraintKind.FOREIGN_KEY:
            catalog.add_foreign_key(
                ForeignKey(
                    name=constraint.name,
                    table=statement.name,
                    columns=constraint.columns,
                    ref_table=constraint.ref_table or "",
                    ref_columns=constraint.ref_columns,
                )
            )
    return table


def execute_create_view(catalog: Catalog, statement: ast.CreateView) -> None:
    catalog.create_view(statement.name, statement.query)


def execute_create_function(catalog: Catalog, statement: ast.CreateFunction) -> SQLFunction:
    if statement.language.upper() != "SQL":
        raise CatalogError(
            f"only LANGUAGE SQL functions are supported, got {statement.language!r}"
        )
    function = SQLFunction(
        name=statement.name,
        body=statement.body,
        arg_types=statement.arg_types,
        return_type=statement.return_type,
        immutable=statement.immutable,
    )
    catalog.register_function(function)
    return function


def execute_drop_table(catalog: Catalog, statement: ast.DropTable) -> None:
    catalog.drop_table(statement.name, if_exists=statement.if_exists)


def execute_drop_view(catalog: Catalog, statement: ast.DropView) -> None:
    catalog.drop_view(statement.name, if_exists=statement.if_exists)
