"""Exception hierarchy shared by the SQL engine and the MTSQL middleware.

Every error raised on purpose by this library derives from :class:`ReproError`
so that callers can catch library failures without accidentally swallowing
programming errors (``TypeError``, ``KeyError``, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL substrate."""


class LexerError(SQLError):
    """Raised when the SQL lexer encounters an invalid character sequence.

    ``position`` is the character offset of the offending input (-1 when
    unknown).
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class ParseError(SQLError):
    """Raised when the SQL parser cannot build an AST from the token stream.

    ``position`` is the character offset of the offending token (-1 when
    unknown).
    """

    def __init__(self, message: str, position: int = -1) -> None:
        super().__init__(message)
        self.position = position


class InvalidStatementError(ParseError):
    """Raised when client-submitted SQL text cannot be lexed or parsed.

    Every statement-accepting entry point (``MTConnection.execute/compile``,
    ``GatewaySession.prepare/execute``, the DB-API cursor) normalizes lexer
    and parser failures onto this one type, so callers handle bad SQL
    uniformly no matter which layer rejected it.  The message always carries
    the offending statement fragment; subclassing :class:`ParseError` keeps
    ``except ParseError`` call sites working.
    """

    @classmethod
    def from_sql(cls, sql: str, cause: Exception) -> "InvalidStatementError":
        """Build the normalized error for ``sql``, quoting the bad fragment.

        ``cause`` is the underlying :class:`LexerError`/:class:`ParseError`;
        its ``position`` (when known) centres the quoted fragment on the
        offending input.
        """
        position = getattr(cause, "position", -1)
        if position is None or position < 0 or position > len(sql):
            fragment, position = sql.strip()[:60], -1
        else:
            start = max(0, position - 20)
            fragment = sql[start : position + 40].strip()
        ellipsis = "..." if len(sql.strip()) > len(fragment) else ""
        return cls(f"invalid statement near {fragment!r}{ellipsis}: {cause}", position)


class TypeCheckError(SQLError):
    """Raised when the static semantic analyzer rejects a statement.

    Emitted at ``prepare()`` time — before any backend or shard sees the
    statement — for unknown columns, ill-typed comparisons, misplaced
    aggregates, wrong UDF signatures and mistyped bind parameters.
    ``fragment`` quotes the offending expression rendered back to SQL and
    ``position`` is its character offset in the submitted text (-1 when the
    fragment was introduced by rewriting and has no source position).
    """

    def __init__(self, message: str, fragment: str = "", position: int = -1) -> None:
        super().__init__(message)
        self.fragment = fragment
        self.position = position


class ParameterError(SQLError):
    """Raised when bind-parameter values do not match a statement's slots.

    Covers missing/extra positional values, unknown/missing parameter names
    and executing a parameterized statement without any bindings at all.
    """


class CatalogError(SQLError):
    """Raised for schema problems: unknown tables/columns, duplicates, ..."""


class ExecutionError(SQLError):
    """Raised when a statement fails during execution."""


class TypeMismatchError(ExecutionError):
    """Raised when an expression combines values of incompatible types."""


class ConstraintViolation(ExecutionError):
    """Raised when a DML statement violates a declared constraint."""


class FunctionError(ExecutionError):
    """Raised when a scalar or aggregate function is misused or fails."""


class ConfigurationError(ReproError):
    """Raised when an environment/configuration value cannot be interpreted."""


class ServerError(ReproError):
    """Base class for errors raised by the network serving tier.

    ``retryable`` tells a client whether re-submitting the same request later
    can succeed (load shedding, timeouts) or whether the request itself is at
    fault; the wire protocol carries the flag in every error frame.
    """

    #: whether re-submitting the identical request later may succeed
    retryable = False


class ProtocolError(ServerError):
    """Raised when a wire frame is malformed, oversized or out of order.

    A protocol violation means the two ends disagree about the byte stream,
    so the server closes the connection after sending this error — unlike
    every other error frame, which leaves the connection usable.
    """


class ServerBusyError(ServerError):
    """Raised when admission control sheds a request (``SERVER_BUSY``).

    The tenant's bounded queue is full; the request was rejected *before*
    consuming backend resources, so retrying after a backoff is safe and is
    exactly what the client is expected to do (``retryable`` is true).
    """

    retryable = True


class RequestTimeoutError(ServerError):
    """Raised when a request exceeds the server's per-request timeout.

    The client gets this frame as soon as the deadline passes; the backend
    work may still be finishing on a worker thread, but its admission slot is
    only released when it actually completes, so timeouts cannot over-admit.
    """

    retryable = True


class BackendError(ReproError):
    """Raised when an execution backend is misused or cannot perform a request."""


class SplitError(SQLError):
    """Raised when a statement cannot be split into per-shard query + merge plan.

    The cluster planner treats this as "not decomposable" and falls back to a
    strategy that does not need the split (single-shard or federated
    execution), so user statements never fail with this error."""


class ClusterError(BackendError):
    """Raised when a sharded cluster is misconfigured or misused."""


class MTSQLError(ReproError):
    """Base class for errors raised by the MTSQL middleware layer."""


class ScopeError(MTSQLError):
    """Raised when a ``SET SCOPE`` expression is invalid."""


class PrivilegeError(MTSQLError):
    """Raised when a tenant lacks the privilege required by a statement."""


class RewriteError(MTSQLError):
    """Raised when an MTSQL statement cannot be rewritten to plain SQL.

    The most prominent case is the one §2.4.2 of the paper forbids outright:
    comparing a tenant-specific attribute with a comparable/convertible one.
    """


class ConversionError(MTSQLError):
    """Raised when a conversion function pair is invalid or misapplied."""


class NotSupportedError(SQLError):
    """Raised when a requested operation is not supported by this library.

    The DB-API layer (:mod:`repro.api`) re-exports this under its PEP 249
    name (e.g. ``Connection.rollback`` on the autocommit backends).
    Subclassing :class:`SQLError` keeps PEP 249's mandated hierarchy —
    ``NotSupportedError`` must be caught by ``except DatabaseError`` (the
    alias of :class:`SQLError`).
    """
