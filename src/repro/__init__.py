"""repro — a reproduction of *MTBase: Optimizing Cross-Tenant Database Queries*.

The package is organized in four layers:

* :mod:`repro.sql`    — SQL/MTSQL lexer, parser, AST and printer,
* :mod:`repro.engine` — an in-memory SQL engine (the simulated back-end DBMS),
* :mod:`repro.core`   — MTSQL semantics: conversion functions, scopes,
  privileges, the canonical rewrite algorithm, the optimizer and the MTBase
  middleware/client,
* :mod:`repro.mth`    — the MT-H benchmark (schema, data generator, queries),
* :mod:`repro.bench`  — the experiment harness regenerating the paper's
  tables and figures.
"""

from .engine import Database, QueryResult

__version__ = "1.0.0"

__all__ = ["Database", "QueryResult", "__version__"]
