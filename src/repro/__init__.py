"""repro — a reproduction of *MTBase: Optimizing Cross-Tenant Database Queries*.

The package is organized in layers (see ``docs/architecture.md``):

* :mod:`repro.sql`      — SQL/MTSQL lexer, parser, AST and dialect-aware
  printer, plus the per-shard query/merge-plan splits,
* :mod:`repro.engine`   — an in-memory SQL engine (the simulated back-end DBMS),
* :mod:`repro.core`     — MTSQL semantics: conversion functions, scopes,
  privileges, the canonical rewrite algorithm, the optimizer and the MTBase
  middleware/client,
* :mod:`repro.compile`  — the staged MTSQL→SQL compilation pipeline: pass
  registry, per-level pass lists, the ``CompiledQuery`` artifact and
  ``explain()``,
* :mod:`repro.backends` — the execution-backend protocol with engine, SQLite
  and sharded-cluster implementations,
* :mod:`repro.cluster`  — tenant placement, the distributed query planner and
  the scatter-gather coordinator behind the sharded backend,
* :mod:`repro.gateway`  — the caching, concurrent multi-tenant serving layer,
* :mod:`repro.api`      — the PEP 249 (DB-API 2.0) driver surface: ``connect``
  → ``Connection`` → ``Cursor`` with bind parameters and streaming fetch,
* :mod:`repro.mth`      — the MT-H benchmark (schema, data generator, queries),
* :mod:`repro.bench`    — the experiment harness regenerating the paper's
  tables and figures (plus shard-count scaling).
"""

from .engine import Database, QueryResult

__version__ = "1.0.0"

__all__ = ["Database", "QueryResult", "__version__"]
