#!/usr/bin/env python3
"""Doc-coverage check for the public API surface.

Walks the configured modules with :mod:`ast` (no imports, so it runs in any
environment) and requires a docstring on

* the module itself,
* every public class,
* every public function and method.

"Public" means the name does not start with ``_`` and the definition is not
nested inside a function; ``__init__`` is exempt (the class docstring covers
construction — the same policy as ``interrogate --ignore-init-method``).
Run directly (``python tools/check_docstrings.py``) or through
``tests/test_docs.py``; exits non-zero listing every undocumented
definition.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: the public entry-point modules held to full doc coverage
PUBLIC_MODULES = (
    "repro/result.py",
    "repro/errors.py",
    "repro/api/__init__.py",
    "repro/api/connection.py",
    "repro/api/cursor.py",
    "repro/backends/__init__.py",
    "repro/backends/base.py",
    "repro/backends/engine.py",
    "repro/backends/sqlite.py",
    "repro/backends/sharded.py",
    "repro/cluster/__init__.py",
    "repro/cluster/placement.py",
    "repro/cluster/planner.py",
    "repro/cluster/merge.py",
    "repro/cluster/coordinator.py",
    "repro/compile/__init__.py",
    "repro/compile/analysis.py",
    "repro/compile/artifact.py",
    "repro/compile/compiler.py",
    "repro/compile/cost.py",
    "repro/compile/explain.py",
    "repro/compile/passes.py",
    "repro/compile/stats.py",
    "repro/compile/typecheck.py",
    "repro/core/middleware.py",
    "repro/core/client.py",
    "repro/gateway/__init__.py",
    "repro/gateway/gateway.py",
    "repro/gateway/session.py",
    "repro/gateway/cache.py",
    "repro/gateway/executor.py",
    "repro/gateway/fingerprint.py",
    "repro/server/__init__.py",
    "repro/server/protocol.py",
    "repro/server/config.py",
    "repro/server/admission.py",
    "repro/server/server.py",
    "repro/server/client.py",
    "repro/server/loopback.py",
    "repro/engine/config.py",
    "repro/engine/columns.py",
    "repro/engine/vector.py",
    "repro/mth/loader.py",
    "repro/bench/workload.py",
    "repro/bench/sharding.py",
    "repro/sql/dialect.py",
    "repro/sql/params.py",
    "repro/sql/transform.py",
)


def _needs_docstring(node: ast.AST) -> bool:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return not node.name.startswith("_")
    if isinstance(node, ast.ClassDef):
        return not node.name.startswith("_")
    return False


def _missing_in(tree: ast.Module, module_label: str) -> list[str]:
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{module_label}: module docstring")

    def visit(body: list[ast.stmt], prefix: str) -> None:
        for node in body:
            if not _needs_docstring(node):
                continue
            label = f"{prefix}{node.name}"  # type: ignore[attr-defined]
            if ast.get_docstring(node) is None:  # type: ignore[arg-type]
                missing.append(f"{module_label}: {label}")
            if isinstance(node, ast.ClassDef):
                visit(node.body, f"{label}.")

    visit(tree.body, "")
    return missing


def check() -> list[str]:
    """Return every undocumented public definition (empty = fully covered)."""
    missing: list[str] = []
    for relative in PUBLIC_MODULES:
        path = SRC / relative
        if not path.exists():
            missing.append(f"{relative}: module not found (update PUBLIC_MODULES)")
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        missing.extend(_missing_in(tree, relative))
    return missing


def main() -> int:
    missing = check()
    if missing:
        print(f"doc coverage: {len(missing)} undocumented public definition(s)")
        for entry in missing:
            print(f"  - {entry}")
        return 1
    print(f"doc coverage: OK ({len(PUBLIC_MODULES)} modules fully documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
