#!/usr/bin/env python3
"""Exec-kernel hygiene checker: generated code stays vetted and sandboxed.

The engine compiles typed batch kernels by assembling Python source from a
closed set of rendered fragments and ``exec``-ing it (see
``repro/engine/vector.py``).  That technique is safe exactly as long as
three properties hold, and this checker enforces them over ``src/``:

1. **Allowlist** — ``exec``/``eval`` builtins are called only in the
   vetted kernel-generation modules (``engine/vector.py`` and
   ``engine/columns.py``); anywhere else is a violation.
2. **Sandbox** — every ``exec`` call passes an explicit globals dict
   literal whose ``"__builtins__"`` entry is an empty dict literal, so
   generated source cannot reach ``open``/``__import__``/anything.
3. **Pre-assembled source** — the executed source goes through
   ``compile(source, <constant filename>, "exec")`` where ``source`` is a
   name or concatenation of names: the kernel text is assembled and
   reviewable *before* the call site, never an inline (f-)string literal
   interpolating runtime values at the ``exec`` itself.

``eval`` is banned outright, including in the allowlisted files — nothing
in the engine needs expression evaluation with a result.

Run directly (``python tools/lint/execguard.py``) or via
``tools/lint/run.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: python tools/lint/execguard.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from lint import SRC, Violation, python_files, relative
else:
    from . import SRC, Violation, python_files, relative

#: the only modules allowed to generate-and-exec kernel source
ALLOWED = (
    "src/repro/engine/vector.py",
    "src/repro/engine/columns.py",
)


def _is_name_call(node: ast.AST, name: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == name
    )


def _sandboxed_globals(node: ast.expr) -> bool:
    """Whether ``node`` is a dict literal with ``"__builtins__": {}``."""
    if not isinstance(node, ast.Dict):
        return False
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant)
            and key.value == "__builtins__"
            and isinstance(value, ast.Dict)
            and not value.keys
        ):
            return True
    return False


def _assembled_source(node: ast.expr) -> bool:
    """Whether the compiled source is pre-assembled (names, not literals)."""
    if isinstance(node, ast.Name):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _assembled_source(node.left) and _assembled_source(node.right)
    return False


def _check_exec_call(path: Path, node: ast.Call) -> list[Violation]:
    where = relative(path)
    problems: list[Violation] = []
    if len(node.args) < 2:
        problems.append(
            Violation(
                where,
                node.lineno,
                "exec() without an explicit globals dict inherits the "
                "caller's builtins; pass {'__builtins__': {}, ...}",
            )
        )
        return problems
    if not _sandboxed_globals(node.args[1]):
        problems.append(
            Violation(
                where,
                node.lineno,
                "exec() globals must be a dict literal containing "
                "'__builtins__': {} (empty dict literal) so generated "
                "kernels cannot reach the real builtins",
            )
        )
    source = node.args[0]
    if _is_name_call(source, "compile"):
        compile_call = source
        if not (
            compile_call.args
            and _assembled_source(compile_call.args[0])
            and len(compile_call.args) >= 2
            and isinstance(compile_call.args[1], ast.Constant)
        ):
            problems.append(
                Violation(
                    where,
                    node.lineno,
                    "compile() inside exec() must take pre-assembled source "
                    "(a variable, not an inline literal) and a constant "
                    "filename for tracebacks",
                )
            )
    else:
        problems.append(
            Violation(
                where,
                node.lineno,
                "exec() must execute compile(<assembled source>, "
                "<constant filename>, 'exec') — never a raw string",
            )
        )
    return problems


def check(roots=None) -> list[Violation]:
    """Run all three rules over ``src/``; return every violation."""
    roots = roots if roots is not None else (SRC,)
    violations: list[Violation] = []
    for path in python_files(*roots):
        where = relative(path)
        allowed = where in ALLOWED
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if _is_name_call(node, "eval"):
                violations.append(
                    Violation(
                        where,
                        node.lineno,
                        "eval() is banned repo-wide (no kernel needs it)",
                    )
                )
            elif _is_name_call(node, "exec"):
                if not allowed:
                    violations.append(
                        Violation(
                            where,
                            node.lineno,
                            "exec() outside the vetted kernel modules "
                            f"({', '.join(ALLOWED)})",
                        )
                    )
                else:
                    violations.extend(_check_exec_call(path, node))
    return violations


def main() -> int:
    """CLI entry point: print findings, exit 1 when any exist."""
    violations = check()
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"execguard: {len(violations)} violation(s)")
        return 1
    print("execguard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
