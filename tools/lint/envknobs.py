#!/usr/bin/env python3
"""Env-knob checker: every ``REPRO_*`` variable is strict and documented.

The repo's configuration contract (set by ``repro/engine/config.py`` and
followed by every layer since): an environment knob is read inside a small
parser function that raises :class:`repro.errors.ConfigurationError` on any
malformed value — never ``or default`` / ``== "1"`` leniency, because a
mistyped knob that silently falls back to its default runs the wrong
experiment and reports it as the right one.

Two rules, enforced over ``src/`` and ``benchmarks/`` with :mod:`ast`:

1. **Strict parse** — every read of a ``REPRO_*`` variable
   (``os.environ.get``, ``os.getenv``, ``os.environ[...]``) must sit inside
   a function whose body raises ``ConfigurationError``.  Membership probes
   (``"X" in os.environ``) are exempt: a probe cannot misparse a value.
2. **Documented** — every ``REPRO_*`` name that reaches a parser must
   appear in ``README.md`` or somewhere under ``docs/``.

Run directly (``python tools/lint/envknobs.py``) or via
``tools/lint/run.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: python tools/lint/envknobs.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from lint import REPO_ROOT, SRC, Violation, python_files, relative
else:
    from . import REPO_ROOT, SRC, Violation, python_files, relative

BENCHMARKS = REPO_ROOT / "benchmarks"
DOC_ROOTS = (REPO_ROOT / "README.md", REPO_ROOT / "docs")

PREFIX = "REPRO_"


def _is_environ(node: ast.AST) -> bool:
    """Whether ``node`` is the ``os.environ`` attribute chain."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "environ"
        and isinstance(node.value, ast.Name)
        and node.value.id == "os"
    )


def _env_read_key(node: ast.AST):
    """The key of an environment *value read*, or ``None``.

    Returns the constant key string, or ``...`` (Ellipsis) for a read whose
    key is dynamic (a variable).  Membership probes are not reads.
    """
    if isinstance(node, ast.Call):
        target = node.func
        # os.environ.get(key[, default])
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "get"
            and _is_environ(target.value)
            and node.args
        ):
            return _key_of(node.args[0])
        # os.getenv(key[, default])
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "getenv"
            and isinstance(target.value, ast.Name)
            and target.value.id == "os"
            and node.args
        ):
            return _key_of(node.args[0])
    # os.environ[key]
    if isinstance(node, ast.Subscript) and _is_environ(node.value):
        return _key_of(node.slice)
    return None


def _key_of(node: ast.AST):
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return ...


def _raises_configuration_error(function: ast.AST) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if isinstance(exc, ast.Name) and exc.id == "ConfigurationError":
                return True
            if isinstance(exc, ast.Attribute) and exc.attr == "ConfigurationError":
                return True
    return False


def _referenced_names(tree: ast.Module) -> set[str]:
    """Every ``REPRO_*`` string constant in the module (for the doc check)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value.startswith(PREFIX)
            and node.value.replace("_", "").isalnum()
            and node.value == node.value.upper()
        ):
            names.add(node.value)
    return names


def _check_module(path: Path) -> tuple[list[Violation], set[str]]:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    violations: list[Violation] = []

    # map every node to its innermost enclosing function
    enclosing: dict[ast.AST, ast.AST] = {}

    def assign(owner, node):
        for child in ast.iter_child_nodes(node):
            scope = node if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) else owner
            enclosing[child] = scope
            assign(scope, child)

    assign(None, tree)

    for node in ast.walk(tree):
        key = _env_read_key(node)
        if key is None:
            continue
        if isinstance(key, str) and not key.startswith(PREFIX):
            continue
        label = key if isinstance(key, str) else "<dynamic key>"
        function = enclosing.get(node)
        if function is None:
            violations.append(
                Violation(
                    relative(path),
                    node.lineno,
                    f"{label} read at module level; wrap it in a strict "
                    f"parser function that raises ConfigurationError",
                )
            )
        elif not _raises_configuration_error(function):
            violations.append(
                Violation(
                    relative(path),
                    node.lineno,
                    f"{label} read in {function.name}() which never raises "
                    f"ConfigurationError; malformed values would silently "
                    f"fall back to the default",
                )
            )
    return violations, _referenced_names(tree)


def _documented_names() -> str:
    texts = []
    for root in DOC_ROOTS:
        if root.is_file():
            texts.append(root.read_text(encoding="utf-8"))
        elif root.is_dir():
            for page in sorted(root.rglob("*.md")):
                texts.append(page.read_text(encoding="utf-8"))
    return "\n".join(texts)


def check(roots=None) -> list[Violation]:
    """Run both rules; return every violation (empty = clean)."""
    roots = roots if roots is not None else (SRC, BENCHMARKS)
    violations: list[Violation] = []
    referenced: dict[str, tuple[str, int]] = {}
    for path in python_files(*roots):
        found, names = _check_module(path)
        violations.extend(found)
        for name in names:
            referenced.setdefault(name, (relative(path), 1))
    documentation = _documented_names()
    for name in sorted(referenced):
        if name not in documentation:
            where, line = referenced[name]
            violations.append(
                Violation(
                    where,
                    line,
                    f"{name} is read but never documented in README.md or "
                    f"docs/ — add it to the environment-variable table",
                )
            )
    return violations


def main() -> int:
    """CLI entry point: print findings, exit 1 when any exist."""
    violations = check()
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"envknobs: {len(violations)} violation(s)")
        return 1
    print("envknobs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
