#!/usr/bin/env python3
"""Lock-discipline checker for the registered shared-mutable classes.

The gateway runs many sessions against one backend, so a handful of
classes are mutated from concurrent threads and guard themselves with a
``self._lock``.  The invariant is easy to state and easy to silently break
in review: **every attribute mutation after construction happens inside a
``with self._lock`` block**.  This checker enforces it with :mod:`ast`
over an explicit registry — the classes whose docstrings promise
thread-safe counters/caches:

* ``repro/result.py`` — ``ExecutionStats``
* ``repro/gateway/cache.py`` — ``RewriteCache``
* ``repro/gateway/metrics.py`` — ``LoadGauge``

Flagged: ``self.x = ...``, ``self.x += ...`` and item stores
``self.x[k] = ...`` in any method other than ``__init__`` /
``__post_init__`` that is not lexically inside ``with self._lock``.
Reads are deliberately not flagged — the registered classes use
copy-on-write or tolerate stale reads by design; it is lost *updates*
the lock exists to prevent.

Run directly (``python tools/lint/lockcheck.py``) or via
``tools/lint/run.py``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: python tools/lint/lockcheck.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from lint import SRC, Violation, relative
else:
    from . import SRC, Violation, relative

#: (repo-relative module, class name) pairs held to the lock discipline
GUARDED_CLASSES = (
    ("repro/result.py", "ExecutionStats"),
    ("repro/gateway/cache.py", "RewriteCache"),
    ("repro/gateway/metrics.py", "LoadGauge"),
)

#: methods that run before the object is shared (no lock needed)
CONSTRUCTION = {"__init__", "__post_init__"}

LOCK_ATTRIBUTE = "_lock"


def _is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _mutated_attribute(target: ast.AST):
    """The ``self.<attr>`` a store target mutates, or ``None``.

    Plain attribute stores and item stores on an attribute both count
    (``self.x = v``, ``self.x[k] = v``); deeper chains reduce to their
    ``self.<attr>`` root.
    """
    node = target
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        if _is_self_attribute(node):
            return node.attr
        node = node.value
    return None


def _is_lock_context(with_node: ast.With) -> bool:
    for item in with_node.items:
        expr = item.context_expr
        if _is_self_attribute(expr) and expr.attr == LOCK_ATTRIBUTE:
            return True
    return False


def _check_method(where: str, class_name: str, method: ast.FunctionDef):
    violations: list[Violation] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With) and _is_lock_context(node):
            locked = True
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attribute = _mutated_attribute(target)
            if attribute is not None and attribute != LOCK_ATTRIBUTE and not locked:
                violations.append(
                    Violation(
                        where,
                        node.lineno,
                        f"{class_name}.{method.name} mutates self."
                        f"{attribute} outside 'with self.{LOCK_ATTRIBUTE}' "
                        f"— concurrent sessions can lose the update",
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for statement in method.body:
        visit(statement, False)
    return violations


def check(registry=GUARDED_CLASSES) -> list[Violation]:
    """Run the lock rule over every registered class."""
    violations: list[Violation] = []
    for module, class_name in registry:
        path = SRC / module
        if not path.exists():
            violations.append(
                Violation(module, 1, f"registered module missing: {module}")
            )
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        where = relative(path)
        found = False
        for node in tree.body:
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                found = True
                for item in node.body:
                    if (
                        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                        and item.name not in CONSTRUCTION
                    ):
                        violations.extend(_check_method(where, class_name, item))
        if not found:
            violations.append(
                Violation(
                    where,
                    1,
                    f"registered class missing: {class_name} (update "
                    f"GUARDED_CLASSES in tools/lint/lockcheck.py)",
                )
            )
    return violations


def main() -> int:
    """CLI entry point: print findings, exit 1 when any exist."""
    violations = check()
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"lockcheck: {len(violations)} violation(s)")
        return 1
    print(f"lockcheck: OK ({len(GUARDED_CLASSES)} classes clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
