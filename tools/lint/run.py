#!/usr/bin/env python3
"""Run every repo lint checker; exit non-zero if any finds a violation.

The CI ``lint`` job and ``tests/test_lint.py`` both come through here, so
one command reproduces either locally::

    python tools/lint/run.py
"""

from __future__ import annotations

import sys
from pathlib import Path

if __package__ in (None, ""):  # direct invocation: python tools/lint/run.py
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from lint import envknobs, execguard, lockcheck
else:
    from . import envknobs, execguard, lockcheck

CHECKERS = (
    ("envknobs", envknobs.check),
    ("execguard", execguard.check),
    ("lockcheck", lockcheck.check),
)


def main() -> int:
    """Run all checkers, print per-checker results, exit 1 on findings."""
    failed = 0
    for name, checker in CHECKERS:
        violations = checker()
        if violations:
            failed += 1
            print(f"{name}: {len(violations)} violation(s)")
            for violation in violations:
                print(f"  {violation.render()}")
        else:
            print(f"{name}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
