"""Repo-specific stdlib-``ast`` lint suite.

Three checkers police invariants the generic linters cannot express:

* :mod:`tools.lint.envknobs` — every ``REPRO_*`` environment variable is
  read through a strict parser (raises ``ConfigurationError`` on malformed
  values, never silently defaults) and is documented in ``docs/`` or the
  README;
* :mod:`tools.lint.execguard` — ``exec``-generated kernel source appears
  only in the two vetted engine modules, pre-compiled, sandboxed with an
  empty ``__builtins__`` and assembled before the call site (never an
  inline literal);
* :mod:`tools.lint.lockcheck` — classes registered as lock-guarded
  (``ExecutionStats``, the gateway cache/metrics) never mutate their
  attributes outside a ``with self._lock`` block.

Run everything with ``python tools/lint/run.py`` (exit 1 on findings);
``tests/test_lint.py`` gates the same checks in the tier-1 suite, and each
checker is unit-tested against seeded violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"


@dataclass(frozen=True)
class Violation:
    """One finding: a file/line plus the rule-specific message."""

    path: str  # repo-relative, forward slashes
    line: int
    message: str

    def render(self) -> str:
        """``path:line: message`` (the conventional compiler format)."""
        return f"{self.path}:{self.line}: {self.message}"


def python_files(*roots: Path) -> list[Path]:
    """Every ``.py`` file under the given roots, sorted for stable output."""
    found: list[Path] = []
    for root in roots:
        found.extend(root.rglob("*.py"))
    return sorted(found)


def relative(path: Path) -> str:
    """Repo-relative, forward-slash form of ``path`` (for messages)."""
    return path.resolve().relative_to(REPO_ROOT).as_posix()
