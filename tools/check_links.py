#!/usr/bin/env python3
"""Markdown link check for the repository's documentation.

Scans the checked markdown files (README plus everything under ``docs/``)
for ``[text](target)`` links and verifies that

* relative file targets exist (resolved against the linking file),
* fragment targets (``file.md#anchor`` or ``#anchor``) name a heading that
  actually exists in the target file (GitHub anchor slugging),
* ``http(s)`` links are *not* fetched — CI runs offline — but must at least
  parse as absolute URLs.

Run directly (``python tools/check_links.py``) or through
``tests/test_docs.py``; exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: markdown files held to the link check
CHECKED_FILES = ("README.md", "docs")

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchor_slug(heading: str) -> str:
    """GitHub's heading → anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set[str]:
    return {_anchor_slug(match) for match in _HEADING.findall(path.read_text(encoding="utf-8"))}


def _markdown_files() -> list[Path]:
    files: list[Path] = []
    for entry in CHECKED_FILES:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.glob("**/*.md")))
        elif path.exists():
            files.append(path)
    return files


def check() -> list[str]:
    """Return every broken link as ``file: target (reason)`` (empty = clean)."""
    problems: list[str] = []
    for source in _markdown_files():
        text = source.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            label = source.relative_to(REPO_ROOT)
            if target.startswith(("http://", "https://")):
                continue  # offline CI: presence is enough
            if target.startswith("mailto:"):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (source.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(f"{label}: {target} (missing file)")
                    continue
            else:
                resolved = source
            if fragment:
                if resolved.suffix != ".md" or fragment not in _anchors_of(resolved):
                    problems.append(f"{label}: {target} (missing anchor)")
    return problems


def main() -> int:
    problems = check()
    if problems:
        print(f"link check: {len(problems)} broken link(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"link check: OK ({len(_markdown_files())} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
