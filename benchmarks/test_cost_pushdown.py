"""Costed federated pushdown: pull volume and wall time, on vs. off.

The federated fallback is the cluster's expensive path: every referenced
table is copied from the shards into the scratch backend before the
statement runs.  The cost-based planner prunes that copy with per-table
prefilters and pull-column subsets; this module pins the effect on the four
federated MT-H queries (Q15/Q17/Q20/Q22) of a 4-shard cluster:

* **rows/cells shipped** (deterministic, asserted even under
  ``--benchmark-disable``): the costed pull must ship a fixed factor fewer
  rows and cells than the uncosted pull-everything baseline,
* **wall time** (reported via ``extra_info``): the costed and uncosted
  federated executions, cold scratch each, for the speedup column.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

SHARDS = 4

#: the federated queries and their pinned minimum reduction factors
#: (rows shipped, cells shipped) — Q22's OR-prefilter keeps ~40% of
#: customer rows, so its row reduction is modest while projection still
#: cuts cells hard
FEDERATED_CASES = {
    15: (4.0, 8.0),
    17: (4.0, 8.0),
    20: (4.0, 8.0),
    22: (1.05, 4.0),
}


@pytest.fixture(scope="module")
def federated_workload():
    config = WorkloadConfig.scenario1()
    config.shards = SHARDS
    return load_workload(config)


def _run_cold(sharded, connection, text: str):
    """One federated execution against a cold scratch, returning
    (seconds, rows_pulled, cells_pulled, prefiltered_syncs)."""
    sharded._scratch_state.clear()
    sharded.reset_pull_counters()
    started = time.perf_counter()
    connection.query(text)
    elapsed = time.perf_counter() - started
    return elapsed, sharded.rows_pulled, sharded.cells_pulled, sharded.prefiltered_syncs


@pytest.mark.parametrize("query_id", sorted(FEDERATED_CASES))
def test_cost_pushdown_reduces_pull_volume(benchmark, federated_workload, query_id):
    workload = federated_workload
    sharded = workload.backend
    connection = workload.connection(client=1, optimization="o4", dataset="IN ()")
    text = query_text(query_id)
    min_rows_factor, min_cells_factor = FEDERATED_CASES[query_id]

    sharded.set_cost(True)
    costed_seconds, costed_rows, costed_cells, prefiltered = _run_cold(
        sharded, connection, text
    )
    sharded.set_cost(False)
    try:
        uncosted_seconds, uncosted_rows, uncosted_cells, _ = _run_cold(
            sharded, connection, text
        )
    finally:
        sharded.set_cost(True)

    assert prefiltered > 0, f"Q{query_id}: costed plan pushed no prefilters"
    rows_factor = uncosted_rows / max(costed_rows, 1)
    cells_factor = uncosted_cells / max(costed_cells, 1)
    assert rows_factor >= min_rows_factor, (
        f"Q{query_id}: costed pull ships {costed_rows} rows vs. uncosted "
        f"{uncosted_rows} ({rows_factor:.2f}x) — expected >= {min_rows_factor}x"
    )
    assert cells_factor >= min_cells_factor, (
        f"Q{query_id}: costed pull ships {costed_cells} cells vs. uncosted "
        f"{uncosted_cells} ({cells_factor:.2f}x) — expected >= {min_cells_factor}x"
    )

    benchmark.extra_info.update(
        {
            "shards": SHARDS,
            "rows_costed": costed_rows,
            "rows_uncosted": uncosted_rows,
            "rows_factor": round(rows_factor, 2),
            "cells_factor": round(cells_factor, 2),
            "seconds_uncosted": round(uncosted_seconds, 4),
            "speedup": round(uncosted_seconds / max(costed_seconds, 1e-9), 2),
        }
    )
    # the timed figure: a cold-scratch costed federated execution
    benchmark.pedantic(
        lambda: _run_cold(sharded, connection, text), rounds=1, iterations=1
    )
