"""Ablation: cost of the MTSQL→SQL rewrite itself (middleware overhead).

The paper argues the middleware adds negligible overhead compared to query
execution.  This ablation measures (a) rewriting alone — parse, canonical
rewrite, all optimization passes, SQL printing — and (b) executing the
already-rewritten statement, for a representative query mix.
"""

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

QUERY_IDS = (1, 3, 6, 22)


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_rewrite_only(benchmark, workload, query_id):
    connection = workload.connection(client=1, optimization="o4", dataset="all")
    text = query_text(query_id)
    benchmark(lambda: connection.rewrite_sql(text))


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_execute_prerewritten(benchmark, workload, query_id):
    connection = workload.connection(client=1, optimization="o4", dataset="all")
    rewritten = connection.rewrite(query_text(query_id))
    workload.reset_caches()
    benchmark.pedantic(
        lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
    )
