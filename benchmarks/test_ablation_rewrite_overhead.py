"""Ablation: cost of the MTSQL→SQL rewrite itself (middleware overhead).

The paper argues the middleware adds negligible overhead compared to query
execution.  This ablation measures (a) compiling alone — parse, canonical
rewrite, optimization passes, shardability analysis, SQL printing — and (b)
executing the already-compiled statement, for a representative query mix,
plus (c) the staged compiler's per-pass timing breakdown
(``CompiledQuery.passes``), which attributes the compile cost to the
canonical rewrite vs. each optimization pass.

The connections use the workload's default optimization level, so
``REPRO_BENCH_LEVEL`` sweeps the whole ablation across Table-6 levels.
"""

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

QUERY_IDS = (1, 3, 6, 22)


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_rewrite_only(benchmark, workload, query_id):
    connection = workload.connection(client=1, dataset="all")
    text = query_text(query_id)
    benchmark(lambda: connection.rewrite_sql(text))


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_execute_prerewritten(benchmark, workload, query_id):
    connection = workload.connection(client=1, dataset="all")
    rewritten = connection.rewrite(query_text(query_id))
    workload.reset_caches()
    benchmark.pedantic(
        lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
    )


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_per_pass_timing_breakdown(benchmark, workload, query_id):
    """Attribute the compile cost to individual stages.

    The benchmarked unit is one full compilation; the per-stage breakdown of
    a representative run is attached to the benchmark's ``extra_info`` (in
    milliseconds) so ``--benchmark-json`` reports carry it.
    """
    connection = workload.connection(client=1, dataset="all")
    text = query_text(query_id)

    compiled = benchmark(lambda: connection.compile(text))

    assert compiled.pass_trace[0] == "canonical"
    total_staged = 0.0
    breakdown = {}
    for record in compiled.passes:
        assert record.seconds >= 0.0
        assert record.nodes_before > 0 and record.nodes_after > 0
        breakdown[record.name] = round(record.seconds * 1000.0, 4)
        total_staged += record.seconds
    # the stages are timed inside the total compile time
    assert total_staged <= compiled.seconds
    benchmark.extra_info["pass_ms"] = breakdown
    benchmark.extra_info["level"] = compiled.level.value
