"""Ablation: cost of the MTSQL→SQL rewrite itself (middleware overhead).

The paper argues the middleware adds negligible overhead compared to query
execution.  This ablation measures (a) compiling alone — parse, canonical
rewrite, optimization passes, shardability analysis, SQL printing — and (b)
executing the already-compiled statement, for a representative query mix,
plus (c) the staged compiler's per-pass timing breakdown
(``CompiledQuery.passes``), which attributes the compile cost to the
canonical rewrite vs. each optimization pass.

The connections use the workload's default optimization level, so
``REPRO_BENCH_LEVEL`` sweeps the whole ablation across Table-6 levels.  On
the engine backend the execution side is additionally measured in *both*
execution modes (vectorized batch kernels vs. the row-at-a-time oracle), so
one ``--benchmark-json`` report separates compile cost from execution cost
per mode.
"""

import time

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

QUERY_IDS = (1, 3, 6, 22)


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_rewrite_only(benchmark, workload, query_id):
    connection = workload.connection(client=1, dataset="all")
    text = query_text(query_id)
    benchmark(lambda: connection.rewrite_sql(text))


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_execute_prerewritten(benchmark, workload, query_id):
    connection = workload.connection(client=1, dataset="all")
    rewritten = connection.rewrite(query_text(query_id))
    workload.reset_caches()
    benchmark.pedantic(
        lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
    )


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_per_pass_timing_breakdown(benchmark, workload, query_id):
    """Attribute the compile cost to individual stages.

    The benchmarked unit is one full compilation; the per-stage breakdown of
    a representative run is attached to the benchmark's ``extra_info`` (in
    milliseconds) so ``--benchmark-json`` reports carry it.
    """
    connection = workload.connection(client=1, dataset="all")
    text = query_text(query_id)

    compiled = benchmark(lambda: connection.compile(text))

    assert compiled.pass_trace[0] == "canonical"
    total_staged = 0.0
    breakdown = {}
    for record in compiled.passes:
        assert record.seconds >= 0.0
        assert record.nodes_before > 0 and record.nodes_after > 0
        breakdown[record.name] = round(record.seconds * 1000.0, 4)
        total_staged += record.seconds
    # the stages are timed inside the total compile time
    assert total_staged <= compiled.seconds
    benchmark.extra_info["pass_ms"] = breakdown
    benchmark.extra_info["level"] = compiled.level.value


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_compile_vs_execute_both_modes(benchmark, workload, query_id):
    """Compile cost next to execution cost in both engine execution modes.

    The benchmarked unit is one vectorized execution of the pre-rewritten
    statement; ``extra_info`` carries the compile time and a single-shot
    row-at-a-time execution time of the same statement (milliseconds), so
    the report shows where the middleware's time actually goes per mode.
    """
    database = getattr(workload.backend, "engine_database", None)
    if database is None:
        pytest.skip("the per-mode ablation needs the in-memory engine backend")
    connection = workload.connection(client=1, dataset="all")
    text = query_text(query_id)

    start = time.perf_counter()
    compiled = connection.compile(text)
    compile_seconds = time.perf_counter() - start
    rewritten = connection.rewrite(text)

    was_enabled = database.vector.enabled
    try:
        database.set_vectorize(False)
        workload.reset_caches()
        start = time.perf_counter()
        row_result = workload.backend.execute(rewritten)
        row_seconds = time.perf_counter() - start

        database.set_vectorize(True)
        workload.reset_caches()
        vector_result = benchmark.pedantic(
            lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
        )
    finally:
        database.set_vectorize(was_enabled)

    assert vector_result.rows == row_result.rows
    benchmark.extra_info["level"] = compiled.level.value
    benchmark.extra_info["compile_ms"] = round(compile_seconds * 1000.0, 4)
    benchmark.extra_info["execute_row_ms"] = round(row_seconds * 1000.0, 4)
