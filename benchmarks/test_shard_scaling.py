"""Shard-count scaling: cross-tenant MT-H over 1/2/4-shard clusters.

Extends the paper's tenant-scaling experiments (Figures 5/6) past what one
backend holds: the same cross-tenant queries execute by scatter-gather over a
tenant-partitioned cluster, and the single-tenant point exercises the
single-shard fast path.  Timings are reported next to the single-backend
execution on the same data (``extra_info`` carries shards/dataset/plan).
"""


import pytest

from repro.bench.workload import WorkloadConfig, env_full, load_workload
from repro.mth.queries import query_text

SHARD_COUNTS = (1, 2, 4, 8) if env_full() else (1, 2, 4)

#: scatter-gather (1, 6, 18), single-shard resident (11), federated (22)
QUERY_IDS = (1, 6, 11, 18, 22)

DATASETS = ("all", "single")


@pytest.fixture(scope="module")
def single_workload():
    """The unsharded reference on the same generated data."""
    return load_workload(WorkloadConfig.scenario1())


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded_workload(request, single_workload):
    """An N-shard cluster loaded with the reference workload's data."""
    config = WorkloadConfig.scenario1()
    config.shards = request.param
    return load_workload(config), request.param


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_single_backend_reference(benchmark, single_workload, query_id):
    text = query_text(query_id)
    connection = single_workload.connection(client=1, optimization="o4", dataset="all")
    single_workload.reset_caches()
    benchmark.extra_info.update({"shards": 0, "dataset": "all"})
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_sharded_scaling(benchmark, sharded_workload, query_id, dataset):
    workload, shards = sharded_workload
    scope = "IN ()" if dataset == "all" else "IN (1)"
    connection = workload.connection(client=1, optimization="o4", dataset=scope)
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1)
    plan = workload.backend.last_plan
    benchmark.extra_info.update(
        {
            "shards": shards,
            "dataset": dataset,
            "plan": plan.describe() if plan is not None else "?",
        }
    )
