"""Ablation: effect of immutable-UDF result caching (postgres vs System C).

The appendix experiments of the paper attribute the System-C blow-up of the
canonical / o1 / o2 levels to the missing UDF result cache.  This ablation
isolates that single factor: the same canonically rewritten query is executed
on both back-end profiles over identical data.
"""

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

QUERY_IDS = (1, 22)
PROFILES = ("postgres", "system_c")


@pytest.fixture(scope="module", params=PROFILES)
def profiled_workload(request):
    config = WorkloadConfig.scenario1(profile=request.param)
    return load_workload(config), request.param


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_canonical_with_and_without_udf_cache(benchmark, profiled_workload, query_id):
    workload, profile = profiled_workload
    connection = workload.connection(client=1, optimization="canonical", dataset="all")
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.extra_info.update({"profile": profile, "level": "canonical"})
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1)
