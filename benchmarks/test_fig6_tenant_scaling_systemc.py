"""Figure 6: tenant scaling on the System-C-like profile (no UDF result caching).

Response time of the conversion-intensive queries Q1, Q6 and Q22 (relative to
plain TPC-H on the same data) for the o4 and inlining-only optimization
levels while the number of tenants grows.  The paper sweeps 1 .. 100 000
tenants at sf = 100; the micro-scale default sweeps 1 .. 100.
"""


import pytest

from repro.bench.workload import WorkloadConfig, env_full, load_workload
from repro.mth.queries import CONVERSION_INTENSIVE, query_text

PROFILE = "system_c"
TENANT_COUNTS = (1, 10, 100, 1000) if env_full() else (1, 10, 100)
LEVELS = ("o4", "inl-only")


@pytest.fixture(scope="module", params=TENANT_COUNTS)
def scaling_workload(request):
    config = WorkloadConfig.scenario2(tenants=request.param, profile=PROFILE)
    return load_workload(config), request.param


@pytest.mark.parametrize("query_id", CONVERSION_INTENSIVE)
def test_tpch_baseline(benchmark, scaling_workload, query_id):
    workload, tenants = scaling_workload
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.extra_info.update({"tenants": tenants, "level": "tpch"})
    benchmark.pedantic(lambda: workload.baseline.query(text), rounds=1, iterations=1)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("query_id", CONVERSION_INTENSIVE)
def test_mth_scaling(benchmark, scaling_workload, level, query_id):
    workload, tenants = scaling_workload
    connection = workload.connection(client=1, optimization=level, dataset="all")
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.extra_info.update({"tenants": tenants, "level": level})
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1)
