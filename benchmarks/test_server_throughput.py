"""Network serving tier: throughput, tail latency and bounded-memory streaming.

Drives the asyncio :class:`~repro.server.ReproServer` with a fleet of
concurrent network clients issuing parameterized Q1/Q6-class MT-H queries,
and reports:

* aggregate **throughput** and the **p50/p95/p99** client-observed latency,
* **shed/timeout counts** from the admission controller (overload answers
  are structured and retryable, so clients back off and retry),
* the same statement load pushed through the in-process thread-pool
  :class:`~repro.gateway.ConcurrentExecutor` as the reference point
  (``extra_info`` carries both sides),
* that incremental FETCH keeps client-side memory **bounded** while
  draining a result far larger than any one batch.

Default scale keeps the tier-1 run fast; ``REPRO_BENCH_FULL=1`` raises the
fleet to 1024 concurrent connections (and ``REPRO_BENCH_SF`` scales the
data) for the paper-style load experiment.
"""

from __future__ import annotations

import asyncio
import time
import tracemalloc

import pytest

from repro.bench.workload import env_full, env_scale_factor
from repro.gateway import ConcurrentExecutor, summarize
from repro.errors import ServerBusyError
from repro.mth.loader import load_mth
from repro.server import ReproServer, ServerConfig, SyncSession
from repro.server.client import AsyncSession

FULL = env_full()
SCALE = env_scale_factor(0.001)
TENANTS = 4
#: concurrent network connections (the paper-style run uses >= 1k)
CONNECTIONS = 1024 if FULL else 32
#: statements per connection
REQUESTS_EACH = 2 if FULL else 1

#: parameterized Q6: one compiled artifact serves every binding
Q6 = (
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
    "WHERE l_discount BETWEEN ? AND ? AND l_quantity < ?"
)
#: parameterized Q1-class aggregation (pricing summary with a bound filter)
Q1 = (
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
    "SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
    "COUNT(*) AS count_ord FROM lineitem WHERE l_quantity < ? "
    "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
)


def bindings(index: int) -> tuple[str, tuple]:
    """Deterministic per-request statement + parameter vector."""
    if index % 2 == 0:
        return Q6, (0.02 + (index % 5) * 0.01, 0.08, 20 + index % 10)
    return Q1, (15 + index % 15,)


def literal_statement(index: int) -> str:
    """The same statement with its bindings inlined (the thread-pool
    executor's batch API takes bare statement text)."""
    sql, parameters = bindings(index)
    for value in parameters:
        sql = sql.replace("?", repr(value), 1)
    return sql


@pytest.fixture(scope="module")
def mth():
    return load_mth(scale_factor=SCALE, tenants=TENANTS, distribution="uniform")


@pytest.fixture(scope="module")
def gateway(mth):
    gateway = mth.middleware.gateway(cache_size=256)
    yield gateway
    gateway.close()


def test_network_throughput_vs_thread_pool(benchmark, mth, gateway):
    """The headline numbers: network tier vs in-process thread pool."""
    config = ServerConfig(concurrency=8, queue_depth=32, workers=8,
                          request_timeout=60.0)
    server = ReproServer(gateway, config=config).start()
    host, port = server.address
    latencies: list[float] = []
    total = CONNECTIONS * REQUESTS_EACH

    async def client(index: int) -> int:
        session = await AsyncSession.open(
            host, port, client=1 + index % TENANTS, optimization="o4"
        )
        done = 0
        try:
            for request in range(REQUESTS_EACH):
                sql, parameters = bindings(index + request)
                began = time.perf_counter()
                while True:
                    try:
                        result = await session.execute(sql, parameters=parameters)
                        break
                    except ServerBusyError:
                        await asyncio.sleep(0.002)  # retryable: back off
                latencies.append(time.perf_counter() - began)
                assert result.columns
                done += 1
        finally:
            await session.close()
        return done

    async def fleet() -> int:
        counts = await asyncio.gather(*(client(i) for i in range(CONNECTIONS)))
        return sum(counts)

    def run() -> int:
        latencies.clear()
        return asyncio.run(fleet())

    # warm the rewrite cache so the measured run is the serving steady state
    for client_id in range(1, TENANTS + 1):
        session = gateway.session(client_id, optimization="o4")
        for index in range(2):
            sql, parameters = bindings(index)
            session.execute(sql, parameters=parameters)
        session.close()

    started = time.perf_counter()
    completed = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    assert completed == total  # every request answered, none hung

    summary = summarize(latencies)
    snapshot = server.admission_snapshot()

    # reference: the same statement mix through the in-process thread pool
    batches = []
    for index in range(min(CONNECTIONS, 16)):
        statements = [literal_statement(index + r) for r in range(REQUESTS_EACH)]
        batches.append(
            (gateway.session(1 + index % TENANTS, optimization="o4"), statements)
        )
    pool_report = ConcurrentExecutor(max_workers=8).run(batches)
    for session, _ in batches:
        session.close()

    benchmark.extra_info.update(
        {
            "connections": CONNECTIONS,
            "requests": total,
            "throughput_rps": round(completed / elapsed, 1),
            "p50_ms": round(summary.p50 * 1e3, 2),
            "p95_ms": round(summary.p95 * 1e3, 2),
            "p99_ms": round(summary.p99 * 1e3, 2),
            "shed": snapshot.shed,
            "timeouts": server.timeouts,
            "peak_in_flight": snapshot.load.peak_in_flight,
            "peak_queued": snapshot.load.peak_queued,
            "thread_pool_rps": round(pool_report.throughput, 1),
            "thread_pool_p95_ms": round(pool_report.latency.p95 * 1e3, 2),
        }
    )
    server.stop()
    assert summary.count == total
    assert summary.p99 >= summary.p95 >= summary.p50 > 0


def test_streaming_fetch_keeps_client_memory_bounded(benchmark, mth):
    """Draining a big scan in small FETCH batches never holds the result."""
    server = ReproServer(mth.middleware).start()
    host, port = server.address
    batch = 64
    session = SyncSession(host, port, client=1, scope="IN ()", optimization="o4")
    expected = len(session.query("SELECT COUNT(*) AS n FROM lineitem").rows) and (
        session.query("SELECT COUNT(*) AS n FROM lineitem").rows[0][0]
    )

    def drain() -> int:
        stream = session.execute_incremental("SELECT * FROM lineitem")
        seen = 0
        while True:
            rows = stream.fetchmany(batch)
            if not rows:
                break
            assert len(rows) <= batch
            seen += len(rows)
        return seen

    tracemalloc.start()
    seen = benchmark.pedantic(drain, rounds=1, iterations=1)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert seen == expected > batch  # the scan dwarfs any single batch
    # bounded: the drain holds batches, not the materialized result set
    assert peak < 16 * 1024 * 1024
    benchmark.extra_info.update(
        {"rows": seen, "batch": batch, "peak_bytes": peak}
    )
    session.close()
    server.stop()
