"""Ablation: vectorized batch execution vs. the row-at-a-time oracle.

The engine's hot path runs batch kernels (``repro.engine.vector``); the
row-at-a-time interpreter is kept as the bit-identical differential oracle
(``REPRO_ENGINE_VECTORIZE=0``).  This ablation times the *same* rewritten
statement in both modes on the same loaded engine database and attaches the
speedup ratio to ``extra_info`` — scan-heavy aggregations (Q1/Q6-class) are
where the batch kernels pay off most, so those are the measured mix.

Ratios are reported, not asserted: wall-clock multiples are hardware- and
load-dependent, and a flaky threshold would hide real regressions behind
retries.  Result rows ARE asserted identical — a speedup measured against a
wrong answer is meaningless.
"""

import time

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

#: scan-dominated aggregation queries, where vectorization matters most
QUERY_IDS = (1, 6)
#: single-shot timing repeated this many times; the minimum is reported
ROUNDS = 3


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_vectorized_speedup(benchmark, workload, query_id):
    """Measure row-mode vs. vectorized execution of one MT-H aggregation."""
    database = getattr(workload.backend, "engine_database", None)
    if database is None:
        pytest.skip("the speedup ablation needs the in-memory engine backend")
    connection = workload.connection(client=1, dataset="all")
    rewritten = connection.rewrite(query_text(query_id))

    was_enabled = database.vector.enabled
    try:
        database.set_vectorize(False)
        workload.reset_caches()
        row_seconds, row_result = _best_of(lambda: workload.backend.execute(rewritten))

        database.set_vectorize(True)
        workload.reset_caches()
        vector_seconds, vector_result = _best_of(
            lambda: workload.backend.execute(rewritten)
        )
        # the benchmarked unit is one more vectorized run, for the report
        benchmark.pedantic(
            lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
        )
    finally:
        database.set_vectorize(was_enabled)

    assert vector_result.rows == row_result.rows
    benchmark.extra_info["execute_row_ms"] = round(row_seconds * 1000.0, 4)
    benchmark.extra_info["execute_vectorized_ms"] = round(vector_seconds * 1000.0, 4)
    benchmark.extra_info["speedup"] = round(
        row_seconds / vector_seconds if vector_seconds > 0 else float("inf"), 3
    )
