"""Ablation: typed kernels vs. generic batch kernels vs. the row oracle.

The engine's hot path runs typed-column kernels (``repro.engine.columns`` +
the specialized paths in ``repro.engine.vector``); below them sit the
generic object-list batch kernels (``REPRO_ENGINE_TYPED=0``), and below
those the row-at-a-time interpreter kept as the bit-identical differential
oracle (``REPRO_ENGINE_VECTORIZE=0``).  This ablation times the *same*
rewritten statement in all three modes on the same loaded engine database
and attaches both ratios to ``extra_info`` — scan-heavy aggregations
(Q1/Q6-class) are where the batch kernels pay off most, so those are the
measured mix.

Ratios are reported, not asserted: wall-clock multiples are hardware- and
load-dependent, and a flaky threshold would hide real regressions behind
retries.  Result rows ARE asserted identical across all three modes — a
speedup measured against a wrong answer is meaningless.
"""

import time

import pytest

from conftest import record_benchmark
from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

#: scan-dominated aggregation queries, where vectorization matters most
QUERY_IDS = (1, 6)
#: single-shot timing repeated this many times; the minimum is reported
ROUNDS = 3


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


def _best_of(fn, rounds=ROUNDS):
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _ratio(slow: float, fast: float) -> float:
    return round(slow / fast if fast > 0 else float("inf"), 3)


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_vectorized_speedup(benchmark, workload, query_id):
    """Measure row vs. generic-batch vs. typed execution of one MT-H query."""
    database = getattr(workload.backend, "engine_database", None)
    if database is None:
        pytest.skip("the speedup ablation needs the in-memory engine backend")
    connection = workload.connection(client=1, dataset="all")
    rewritten = connection.rewrite(query_text(query_id))

    was_enabled = database.vector.enabled
    was_typed = database.vector.typed

    def _measure():
        workload.reset_caches()
        return _best_of(lambda: workload.backend.execute(rewritten))

    try:
        database.set_vectorize(False)
        row_seconds, row_result = _measure()

        database.set_vectorize(True)
        database.set_typed(False)
        generic_seconds, generic_result = _measure()

        database.set_typed(True)
        typed_seconds, typed_result = _measure()
        # the benchmarked unit is one more typed run, for the report
        benchmark.pedantic(
            lambda: workload.backend.execute(rewritten), rounds=1, iterations=1
        )
    finally:
        database.set_vectorize(was_enabled)
        database.set_typed(was_typed)

    assert typed_result.rows == generic_result.rows == row_result.rows
    benchmark.extra_info["execute_row_ms"] = round(row_seconds * 1000.0, 4)
    benchmark.extra_info["execute_generic_ms"] = round(generic_seconds * 1000.0, 4)
    benchmark.extra_info["execute_typed_ms"] = round(typed_seconds * 1000.0, 4)
    # generic batch kernels over the row oracle (the PR 7 win) ...
    benchmark.extra_info["vectorized_speedup"] = _ratio(row_seconds, generic_seconds)
    # ... and typed kernels over the generic batch kernels (this PR's win)
    benchmark.extra_info["typed_speedup"] = _ratio(generic_seconds, typed_seconds)
    benchmark.extra_info["speedup"] = _ratio(row_seconds, typed_seconds)
    record_benchmark(benchmark, "vectorized-speedup", query=query_id)
