"""Ablation: the gateway's rewrite cache — cold vs. warm-path latency.

The rewrite-overhead ablation (`test_ablation_rewrite_overhead.py`) measures
what every statement pays for parse + canonical rewrite + optimization.  The
gateway amortizes exactly that cost: a warm cache execution skips the whole
pipeline and goes straight to the DBMS.  This module checks both acceptance
criteria:

* gateway results are **identical** to direct :class:`MTConnection` results
  for the full MT-H query set (cold and warm), and
* warm-cache per-statement latency is measurably below the cold path at O4.
"""

import time

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import ALL_QUERY_IDS, query_text

#: the rewrite-heavy representative mix used for the latency comparison
QUERY_IDS = (1, 3, 6, 22)

COLD_ROUNDS = 3
WARM_ROUNDS = 5


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


@pytest.fixture(scope="module")
def gateway(workload):
    return workload.gateway(cache_size=512)


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_gateway_results_match_direct_connection(workload, gateway, query_id):
    """Cold pass, warm pass and the direct connection agree exactly (Q1-Q22)."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    direct = workload.connection(client=1, optimization="o4", dataset="all")
    text = query_text(query_id)
    cold = session.query(text)
    warm = session.query(text)
    reference = direct.query(text)
    assert cold.columns == warm.columns == reference.columns
    assert cold.rows == warm.rows == reference.rows


def test_warm_cache_latency_below_cold_path_at_o4(workload, gateway):
    """Per-statement latency: warm (cache hit) < cold (parse + rewrite + run).

    Minima over several rounds cancel scheduler noise; the gap is the
    pipeline cost the cache saves, which at O4 is far above timer noise.
    """
    session = gateway.session(1, optimization="o4", scope="IN ()")
    cold_total = 0.0
    warm_total = 0.0
    for query_id in QUERY_IDS:
        text = query_text(query_id)
        cold_samples = []
        for _ in range(COLD_ROUNDS):
            gateway.invalidate_cache(reason="bench-cold")
            began = time.perf_counter()
            session.query(text)
            cold_samples.append(time.perf_counter() - began)
        warm_samples = []
        for _ in range(WARM_ROUNDS):
            began = time.perf_counter()
            session.query(text)
            warm_samples.append(time.perf_counter() - began)
        cold_total += min(cold_samples)
        warm_total += min(warm_samples)
    assert warm_total < cold_total, (
        f"warm cache ({warm_total * 1e3:.2f}ms) should beat the cold path "
        f"({cold_total * 1e3:.2f}ms) over queries {QUERY_IDS}"
    )


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_cold_path(benchmark, workload, gateway, query_id):
    """Benchmark table: full pipeline per statement (cache flushed each run)."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    text = query_text(query_id)

    def cold():
        gateway.invalidate_cache(reason="bench-cold")
        session.query(text)

    benchmark.pedantic(cold, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_warm_path(benchmark, workload, gateway, query_id):
    """Benchmark table: cache-hit execution of the same statements."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    text = query_text(query_id)
    session.query(text)  # prime
    benchmark.pedantic(lambda: session.query(text), rounds=1, iterations=1, warmup_rounds=0)


# ---------------------------------------------------------------------------
# Parameterization ablation: hit rate with vs. without bind parameters
# ---------------------------------------------------------------------------
#
# A workload that varies a literal per execution (the common "same query,
# different threshold" pattern) defeats the cache when the literal is inlined
# — every spelling is a distinct fingerprint — but turns into a pure warm-hit
# stream once the literal is lifted into a bind parameter: the cache key is
# the *parameterized* fingerprint, so one compiled artifact serves every
# binding.

#: MT-H Q6 with the selectivity literals lifted into parameters
PARAM_TEMPLATE = (
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
    "WHERE l_discount BETWEEN ?1 AND ?2 AND l_quantity < ?3"
)

#: the distinct per-execution bindings (one workload "day" each)
PARAM_BINDINGS = tuple(
    (round(0.02 + 0.01 * step, 2), round(0.04 + 0.01 * step, 2), 20 + step)
    for step in range(6)
)


def _literal_spelling(bindings) -> str:
    low, high, cap = bindings
    return (
        f"SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
        f"WHERE l_discount BETWEEN {low} AND {high} AND l_quantity < {cap}"
    )


def test_parameterization_ablation_hit_rate(workload):
    """One compilation + warm hits with parameters; N compilations without."""
    middleware = workload.middleware
    gateway = middleware.gateway(cache_size=512)
    compiler = middleware.compiler

    literal_session = gateway.session(1, optimization="o4", scope="IN ()")
    before = compiler.stats.compilations
    literal_results = [
        literal_session.query(_literal_spelling(bindings)).rows
        for bindings in PARAM_BINDINGS
    ]
    literal_compilations = compiler.stats.compilations - before
    literal_hits = literal_session.stats.cache_hits

    param_session = gateway.session(1, optimization="o4", scope="IN ()")
    before = compiler.stats.compilations
    param_results = [
        param_session.query(PARAM_TEMPLATE, parameters=bindings).rows
        for bindings in PARAM_BINDINGS
    ]
    param_compilations = compiler.stats.compilations - before
    param_hits = param_session.stats.cache_hits

    # identical answers, radically different cache behaviour
    assert param_results == literal_results
    assert literal_compilations == len(PARAM_BINDINGS) and literal_hits == 0
    assert param_compilations == 1 and param_hits == len(PARAM_BINDINGS) - 1

    literal_rate = literal_hits / len(PARAM_BINDINGS)
    param_rate = param_hits / len(PARAM_BINDINGS)
    print(
        f"\nparameterization ablation over {len(PARAM_BINDINGS)} executions: "
        f"literal hit rate {literal_rate:.0%} ({literal_compilations} "
        f"compilations) vs parameterized {param_rate:.0%} "
        f"({param_compilations} compilation)"
    )


def test_parameterized_warm_latency_below_literal_churn(workload):
    """Wall-clock: re-binding a cached statement beats re-compiling literals."""
    gateway = workload.middleware.gateway(cache_size=512)
    literal_session = gateway.session(1, optimization="o4", scope="IN ()")
    param_session = gateway.session(1, optimization="o4", scope="IN ()")
    param_session.query(PARAM_TEMPLATE, parameters=PARAM_BINDINGS[0])  # prime

    literal_samples = []
    param_samples = []
    for _ in range(3):
        began = time.perf_counter()
        for bindings in PARAM_BINDINGS:
            gateway.invalidate_cache(reason="bench-param-ablation")
            literal_session.query(_literal_spelling(bindings))
        literal_samples.append(time.perf_counter() - began)

        param_session.query(PARAM_TEMPLATE, parameters=PARAM_BINDINGS[0])  # re-prime
        began = time.perf_counter()
        for bindings in PARAM_BINDINGS:
            param_session.query(PARAM_TEMPLATE, parameters=bindings)
        param_samples.append(time.perf_counter() - began)

    assert min(param_samples) < min(literal_samples), (
        f"parameterized warm stream ({min(param_samples) * 1e3:.2f}ms) should "
        f"beat literal churn ({min(literal_samples) * 1e3:.2f}ms)"
    )
