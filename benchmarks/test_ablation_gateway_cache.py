"""Ablation: the gateway's rewrite cache — cold vs. warm-path latency.

The rewrite-overhead ablation (`test_ablation_rewrite_overhead.py`) measures
what every statement pays for parse + canonical rewrite + optimization.  The
gateway amortizes exactly that cost: a warm cache execution skips the whole
pipeline and goes straight to the DBMS.  This module checks both acceptance
criteria:

* gateway results are **identical** to direct :class:`MTConnection` results
  for the full MT-H query set (cold and warm), and
* warm-cache per-statement latency is measurably below the cold path at O4.
"""

import time

import pytest

from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import ALL_QUERY_IDS, query_text

#: the rewrite-heavy representative mix used for the latency comparison
QUERY_IDS = (1, 3, 6, 22)

COLD_ROUNDS = 3
WARM_ROUNDS = 5


@pytest.fixture(scope="module")
def workload():
    return load_workload(WorkloadConfig.scenario1())


@pytest.fixture(scope="module")
def gateway(workload):
    return workload.gateway(cache_size=512)


@pytest.mark.parametrize("query_id", ALL_QUERY_IDS)
def test_gateway_results_match_direct_connection(workload, gateway, query_id):
    """Cold pass, warm pass and the direct connection agree exactly (Q1-Q22)."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    direct = workload.connection(client=1, optimization="o4", dataset="all")
    text = query_text(query_id)
    cold = session.query(text)
    warm = session.query(text)
    reference = direct.query(text)
    assert cold.columns == warm.columns == reference.columns
    assert cold.rows == warm.rows == reference.rows


def test_warm_cache_latency_below_cold_path_at_o4(workload, gateway):
    """Per-statement latency: warm (cache hit) < cold (parse + rewrite + run).

    Minima over several rounds cancel scheduler noise; the gap is the
    pipeline cost the cache saves, which at O4 is far above timer noise.
    """
    session = gateway.session(1, optimization="o4", scope="IN ()")
    cold_total = 0.0
    warm_total = 0.0
    for query_id in QUERY_IDS:
        text = query_text(query_id)
        cold_samples = []
        for _ in range(COLD_ROUNDS):
            gateway.invalidate_cache(reason="bench-cold")
            began = time.perf_counter()
            session.query(text)
            cold_samples.append(time.perf_counter() - began)
        warm_samples = []
        for _ in range(WARM_ROUNDS):
            began = time.perf_counter()
            session.query(text)
            warm_samples.append(time.perf_counter() - began)
        cold_total += min(cold_samples)
        warm_total += min(warm_samples)
    assert warm_total < cold_total, (
        f"warm cache ({warm_total * 1e3:.2f}ms) should beat the cold path "
        f"({cold_total * 1e3:.2f}ms) over queries {QUERY_IDS}"
    )


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_cold_path(benchmark, workload, gateway, query_id):
    """Benchmark table: full pipeline per statement (cache flushed each run)."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    text = query_text(query_id)

    def cold():
        gateway.invalidate_cache(reason="bench-cold")
        session.query(text)

    benchmark.pedantic(cold, rounds=1, iterations=1, warmup_rounds=0)


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_warm_path(benchmark, workload, gateway, query_id):
    """Benchmark table: cache-hit execution of the same statements."""
    session = gateway.session(1, optimization="o4", scope="IN ()")
    text = query_text(query_id)
    session.query(text)  # prime
    benchmark.pedantic(lambda: session.query(text), rounds=1, iterations=1, warmup_rounds=0)
