"""Shared fixtures and helpers for the MT-H benchmark suite.

Every pytest-benchmark module regenerates one of the paper's tables or
figures.  Because the engine is pure Python, the default configuration uses a
micro scale factor and a representative subset of queries; set

* ``REPRO_BENCH_SF``   — scale factor (default 0.002),
* ``REPRO_BENCH_FULL`` — ``1`` to run all 22 queries and all six levels,

to run the full grids (slower, but exactly the paper's tables).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tables import TABLE_CONFIGS, time_query
from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import ALL_QUERY_IDS, query_text

FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

#: representative queries: conversion heavy (1, 6, 22), join heavy (3, 10),
#: global-table only (11), CASE/aggregation (14)
DEFAULT_QUERY_IDS = (1, 3, 6, 10, 11, 14, 22)
QUERY_IDS = ALL_QUERY_IDS if FULL else DEFAULT_QUERY_IDS

DEFAULT_LEVELS = ("canonical", "o1", "o4", "inl-only")
LEVELS = ("canonical", "o1", "o2", "o3", "o4", "inl-only") if FULL else DEFAULT_LEVELS


def table_workload(table_id: str):
    """Load (once per session) the scenario-1 workload for a table experiment."""
    spec = TABLE_CONFIGS[table_id]
    config = WorkloadConfig.scenario1(profile=spec["profile"])
    return load_workload(config), spec


def run_mth_query(benchmark, workload, spec, level: str, query_id: int) -> None:
    """Benchmark one (level, query) cell of a response-time table."""
    connection = workload.connection(
        client=spec["client"], optimization=level, dataset=spec["dataset"]
    )
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1, warmup_rounds=0)


def run_baseline_query(benchmark, workload, query_id: int) -> None:
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.pedantic(
        lambda: workload.baseline.query(text), rounds=1, iterations=1, warmup_rounds=0
    )


@pytest.fixture(scope="session")
def scenario1_postgres():
    workload, _ = table_workload("5")
    return workload


@pytest.fixture(scope="session")
def scenario1_systemc():
    workload, _ = table_workload("9")
    return workload
