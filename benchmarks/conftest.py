"""Shared fixtures and helpers for the MT-H benchmark suite.

Every pytest-benchmark module regenerates one of the paper's tables or
figures.  Because the engine is pure Python, the default configuration uses a
micro scale factor and a representative subset of queries; set

* ``REPRO_BENCH_SF``   — scale factor (default 0.002),
* ``REPRO_BENCH_FULL`` — ``1`` to run all 22 queries and all six levels,

to run the full grids (slower, but exactly the paper's tables).

``--bench-json=PATH`` (or ``REPRO_BENCH_JSON=PATH``) additionally writes a
machine-readable summary at session end: one record per benchmarked query
with its median timing in milliseconds plus whatever the module attached to
``benchmark.extra_info`` (speedup ratios, per-mode timings, ...).  CI and
tracking scripts diff these files across commits instead of scraping the
terminal table.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.tables import TABLE_CONFIGS, time_query
from repro.bench.workload import (
    WorkloadConfig,
    env_full,
    env_json,
    env_scale_factor,
    load_workload,
)
from repro.mth.queries import ALL_QUERY_IDS, query_text

FULL = env_full()

#: records accumulated by :func:`record_benchmark`, flushed at session end
_BENCH_RECORDS: list[dict] = []


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write per-query median timings as JSON to PATH "
        "(REPRO_BENCH_JSON=PATH is the environment equivalent)",
    )


def _bench_json_path(config) -> str | None:
    return config.getoption("--bench-json", default=None) or env_json()


def record_benchmark(benchmark, name: str, **fields) -> None:
    """Add one JSON record for a completed ``benchmark`` run.

    ``median_ms`` comes from pytest-benchmark's own statistics for the
    measured unit; ``fields`` label the cell (query id, level, mode) and
    ``benchmark.extra_info`` rides along verbatim.  Harmless no-op when the
    benchmark never ran (skipped cell) or JSON output is not requested —
    the list is simply never flushed.
    """
    stats = getattr(getattr(benchmark, "stats", None), "stats", None)
    record = dict(fields)
    record["name"] = name
    if stats is not None:
        record["median_ms"] = round(stats.median * 1000.0, 4)
        record["rounds"] = len(stats.data)
    if benchmark.extra_info:
        record["extra_info"] = dict(benchmark.extra_info)
    _BENCH_RECORDS.append(record)


def pytest_sessionfinish(session, exitstatus):
    path = _bench_json_path(session.config)
    if not path or not _BENCH_RECORDS:
        return
    payload = {
        "full": FULL,
        "scale_factor": env_scale_factor(default=None),
        "records": _BENCH_RECORDS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

#: representative queries: conversion heavy (1, 6, 22), join heavy (3, 10),
#: global-table only (11), CASE/aggregation (14)
DEFAULT_QUERY_IDS = (1, 3, 6, 10, 11, 14, 22)
QUERY_IDS = ALL_QUERY_IDS if FULL else DEFAULT_QUERY_IDS

DEFAULT_LEVELS = ("canonical", "o1", "o4", "inl-only")
LEVELS = ("canonical", "o1", "o2", "o3", "o4", "inl-only") if FULL else DEFAULT_LEVELS


def table_workload(table_id: str):
    """Load (once per session) the scenario-1 workload for a table experiment."""
    spec = TABLE_CONFIGS[table_id]
    config = WorkloadConfig.scenario1(profile=spec["profile"])
    return load_workload(config), spec


def run_mth_query(benchmark, workload, spec, level: str, query_id: int) -> None:
    """Benchmark one (level, query) cell of a response-time table."""
    connection = workload.connection(
        client=spec["client"], optimization=level, dataset=spec["dataset"]
    )
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.pedantic(lambda: connection.query(text), rounds=1, iterations=1, warmup_rounds=0)
    record_benchmark(benchmark, "mth", query=query_id, level=level)


def run_baseline_query(benchmark, workload, query_id: int) -> None:
    text = query_text(query_id)
    workload.reset_caches()
    benchmark.pedantic(
        lambda: workload.baseline.query(text), rounds=1, iterations=1, warmup_rounds=0
    )
    record_benchmark(benchmark, "baseline", query=query_id)


@pytest.fixture(scope="session")
def scenario1_postgres():
    workload, _ = table_workload("5")
    return workload


@pytest.fixture(scope="session")
def scenario1_systemc():
    workload, _ = table_workload("9")
    return workload
