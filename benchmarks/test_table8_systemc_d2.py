"""Table 8: System-C profile (no UDF caching), D = {2}.

Regenerates the paper's response-time grid: every parametrized benchmark is
one (optimization level, query) cell; the tpch benchmarks are the
single-tenant baseline the paper compares against.  Run with
REPRO_BENCH_FULL=1 for all 22 queries and all six levels.
"""

import pytest

from conftest import LEVELS, QUERY_IDS, run_baseline_query, run_mth_query, table_workload

TABLE_ID = "8"


@pytest.fixture(scope="module")
def workload_and_spec():
    return table_workload(TABLE_ID)


@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_tpch_baseline(benchmark, workload_and_spec, query_id):
    workload, _ = workload_and_spec
    run_baseline_query(benchmark, workload, query_id)


@pytest.mark.parametrize("level", LEVELS)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_mth_query(benchmark, workload_and_spec, level, query_id):
    workload, spec = workload_and_spec
    run_mth_query(benchmark, workload, spec, level, query_id)
