#!/usr/bin/env python3
"""Quickstart: the paper's running example (Employees / Roles / Regions).

Builds a tiny multi-tenant database with two tenants that store salaries in
different currencies, then shows what MTSQL adds on top of SQL:

* tenant 0 queries the joint data set and sees every salary in USD,
* tenant 1 asks the same query and sees EUR,
* joins on tenant-specific attributes are automatically restricted to the
  owning tenant,
* the rewritten SQL can be inspected for every optimization level.

Run with ``python examples/quickstart.py``.
"""

from repro.core import MTBase, make_currency_pair
from repro.sql.printer import to_sql


def build_middleware() -> MTBase:
    mt = MTBase()
    db = mt.database

    # --- conversion infrastructure (paper Listings 6 and 7) -------------------
    db.execute(
        "CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL,"
        " CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key))"
    )
    db.execute(
        "CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,"
        " CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL,"
        " CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key))"
    )
    db.execute("INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, 1.1, 0.9090909)")
    db.execute("INSERT INTO Tenant VALUES (0, 0), (1, 1)")
    db.execute(
        "CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    db.execute(
        "CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    # rate look-ups used by the inlined form of the conversions
    rates_to = {0: 1.0, 1: 1.1}
    rates_from = {0: 1.0, 1: 0.9090909}
    db.register_python_function("mt_currency_rate_to_universal", rates_to.__getitem__, immutable=True)
    db.register_python_function("mt_currency_rate_from_universal", rates_from.__getitem__, immutable=True)
    mt.register_conversion_pair(make_currency_pair())

    # --- MTSQL DDL (paper Listing 3) -------------------------------------------
    mt.create_table(
        """CREATE TABLE Roles SPECIFIC (
            R_role_id INTEGER NOT NULL SPECIFIC,
            R_name VARCHAR(25) NOT NULL COMPARABLE
        )""",
        ttid_column="R_ttid",
    )
    mt.create_table(
        """CREATE TABLE Employees SPECIFIC (
            E_emp_id INTEGER NOT NULL SPECIFIC,
            E_name VARCHAR(25) NOT NULL COMPARABLE,
            E_role_id INTEGER NOT NULL SPECIFIC,
            E_reg_id INTEGER NOT NULL COMPARABLE,
            E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            E_age INTEGER NOT NULL COMPARABLE,
            CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
            CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id)
        )""",
        ttid_column="E_ttid",
    )
    mt.create_table(
        """CREATE TABLE Regions GLOBAL (
            Re_reg_id INTEGER NOT NULL,
            Re_name VARCHAR(25) NOT NULL
        )"""
    )

    # --- data of Figure 2 ---------------------------------------------------------
    db.execute(
        "INSERT INTO Employees VALUES"
        " (0,0,'Patrick',1,3,50000,30),(0,1,'John',0,3,70000,28),(0,2,'Alice',2,3,150000,46),"
        " (1,0,'Allan',1,2,80000,25),(1,1,'Nancy',2,4,200000,72),(1,2,'Ed',0,4,1000000,46)"
    )
    db.execute(
        "INSERT INTO Roles VALUES (0,0,'phD stud.'),(0,1,'postdoc'),(0,2,'professor'),"
        " (1,0,'intern'),(1,1,'researcher'),(1,2,'executive')"
    )
    db.execute(
        "INSERT INTO Regions VALUES (0,'AFRICA'),(1,'ASIA'),(2,'AUSTRALIA'),"
        " (3,'EUROPE'),(4,'N-AMERICA'),(5,'S-AMERICA')"
    )

    mt.register_tenant(0, "ACME Corp (USD)")
    mt.register_tenant(1, "Euro GmbH (EUR)")
    mt.allow_cross_tenant_access()
    return mt


def main() -> None:
    mt = build_middleware()

    print("=== Tenant 0 (USD) queries the joint data set ===")
    conn = mt.connect(0, optimization="o4")
    conn.execute('SET SCOPE = "IN (0, 1)"')
    result = conn.query(
        "SELECT E_name, E_salary, E_age FROM Employees WHERE E_salary > 100000 ORDER BY E_salary DESC"
    )
    for row in result.rows:
        print("   ", row)

    print("\n=== The same query asked by tenant 1 (EUR) ===")
    conn_eur = mt.connect(1, optimization="o4")
    conn_eur.execute('SET SCOPE = "IN (0, 1)"')
    for row in conn_eur.query(
        "SELECT E_name, E_salary, E_age FROM Employees WHERE E_salary > 100000 ORDER BY E_salary DESC"
    ).rows:
        print("   ", row)

    print("\n=== Joins on tenant-specific attributes stay within a tenant ===")
    for row in conn.query(
        "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name"
    ).rows:
        print("   ", row)

    print("\n=== What the middleware actually sends to the DBMS ===")
    query = "SELECT AVG(E_salary) AS avg_salary FROM Employees"
    for level in ("canonical", "o1", "o3", "o4"):
        connection = mt.connect(0, optimization=level)
        connection.execute('SET SCOPE = "IN (0, 1)"')
        print(f"-- {level}")
        print("  ", connection.rewrite_sql(query))
        print("   -> average salary in USD:", round(connection.query(query).scalar(), 2))

    print("\n=== Complex scopes select tenants by predicate ===")
    conn.execute('SET SCOPE = "FROM Employees WHERE E_salary > 180000"')
    print("   tenants with an employee earning more than 180k USD:", conn.dataset())


if __name__ == "__main__":
    main()
