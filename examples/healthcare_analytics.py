#!/usr/bin/env python3
"""Cross-tenant analytics over a health-care SaaS (the paper's motivating use case).

Several clinics (tenants) store anonymized patient encounters in a shared
multi-tenant database.  Clinics bill in different currencies.  A research
institute (itself a tenant without patient data) is granted read access by
some — not all — clinics and runs cross-tenant analyses:

* the data set D is selected with a *complex scope* ("clinics that treated at
  least one high-cost encounter"),
* privilege pruning removes clinics that did not grant access,
* aggregates over the convertible ``cost`` attribute are converted into the
  research institute's currency automatically.

Run with ``python examples/healthcare_analytics.py``.
"""

from repro.core import MTBase, make_currency_pair

CLINICS = {
    2: ("City Hospital", "USD"),
    3: ("Lakeside Clinic", "EUR"),
    4: ("Mountain Care", "CHF"),
    5: ("Harbour Practice", "EUR"),
}
RESEARCH_INSTITUTE = 1  # tenant 1 uses the universal currency (USD)

RATES_TO_USD = {"USD": 1.0, "EUR": 1.1, "CHF": 1.05}


def build() -> MTBase:
    mt = MTBase()
    db = mt.database

    # conversion infrastructure
    db.execute(
        "CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL,"
        " CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key))"
    )
    db.execute(
        "CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,"
        " CT_to_universal DECIMAL(15,6) NOT NULL, CT_from_universal DECIMAL(15,6) NOT NULL,"
        " CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key))"
    )
    currencies = {code: key for key, code in enumerate(RATES_TO_USD)}
    for code, key in currencies.items():
        rate = RATES_TO_USD[code]
        db.execute(
            f"INSERT INTO CurrencyTransform VALUES ({key}, {rate}, {1.0 / rate})"
        )
    tenant_currency = {RESEARCH_INSTITUTE: "USD"}
    tenant_currency.update({ttid: currency for ttid, (_, currency) in CLINICS.items()})
    for ttid, code in tenant_currency.items():
        db.execute(f"INSERT INTO Tenant VALUES ({ttid}, {currencies[code]})")
    db.execute(
        "CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    db.execute(
        "CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2) AS "
        "'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform "
        "WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key' LANGUAGE SQL IMMUTABLE"
    )
    to_rates = {ttid: RATES_TO_USD[code] for ttid, code in tenant_currency.items()}
    from_rates = {ttid: 1.0 / rate for ttid, rate in to_rates.items()}
    db.register_python_function("mt_currency_rate_to_universal", to_rates.__getitem__, immutable=True)
    db.register_python_function("mt_currency_rate_from_universal", from_rates.__getitem__, immutable=True)
    mt.register_conversion_pair(make_currency_pair())

    # schema: a global diagnosis catalogue and tenant-specific encounters
    mt.create_table(
        """CREATE TABLE diagnoses GLOBAL (
            d_code VARCHAR(10) NOT NULL,
            d_description VARCHAR(80) NOT NULL,
            CONSTRAINT pk_diag PRIMARY KEY (d_code)
        )"""
    )
    mt.create_table(
        """CREATE TABLE encounters SPECIFIC (
            e_id INTEGER NOT NULL SPECIFIC,
            e_diagnosis VARCHAR(10) NOT NULL COMPARABLE,
            e_age_group VARCHAR(10) NOT NULL COMPARABLE,
            e_cost DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
            e_outcome VARCHAR(10) NOT NULL COMPARABLE,
            CONSTRAINT pk_enc PRIMARY KEY (e_id)
        )""",
        ttid_column="e_ttid",
    )

    db.execute(
        "INSERT INTO diagnoses VALUES ('J45', 'Asthma'), ('E11', 'Type 2 diabetes'),"
        " ('I10', 'Hypertension'), ('M54', 'Back pain')"
    )

    mt.register_tenant(RESEARCH_INSTITUTE, "Research Institute")
    for ttid, (name, _) in CLINICS.items():
        mt.register_tenant(ttid, name)

    # each clinic loads its own encounters, in its own currency
    import random

    rng = random.Random(7)
    diagnoses = ("J45", "E11", "I10", "M54")
    age_groups = ("0-17", "18-39", "40-64", "65+")
    outcomes = ("recovered", "referred", "chronic")
    encounter_id = 0
    for ttid, (name, currency) in CLINICS.items():
        clinic = mt.connect(ttid)  # default scope: the clinic's own data
        rows = []
        for _ in range(60):
            encounter_id += 1
            cost_local = round(rng.uniform(80, 4200), 2)
            rows.append(
                f"({encounter_id}, '{rng.choice(diagnoses)}', '{rng.choice(age_groups)}',"
                f" {cost_local}, '{rng.choice(outcomes)}')"
            )
        clinic.execute(
            "INSERT INTO encounters (e_id, e_diagnosis, e_age_group, e_cost, e_outcome) VALUES "
            + ", ".join(rows)
        )

    # clinics 2, 3 and 4 join the research data-sharing agreement; clinic 5 declines
    for ttid in (2, 3, 4):
        clinic = mt.connect(ttid)
        clinic.execute(f"GRANT READ ON encounters TO {RESEARCH_INSTITUTE}")
    return mt


def main() -> None:
    mt = build()
    research = mt.connect(RESEARCH_INSTITUTE, optimization="o4")

    print("=== Which clinics can the institute see at all? ===")
    research.execute('SET SCOPE = "IN ()"')  # ask for everybody ...
    print("   scope resolves to D =", research.dataset())
    visible = research.query("SELECT COUNT(*) AS encounters FROM encounters").scalar()
    print(
        "   readable encounters after privilege pruning:",
        visible,
        "(3 clinics x 60 — clinic 5 did not grant access)",
    )

    print("\n=== Average cost per diagnosis across the participating clinics (USD) ===")
    result = research.query(
        """SELECT d_description, COUNT(*) AS cases, AVG(e_cost) AS avg_cost_usd
           FROM encounters, diagnoses
           WHERE e_diagnosis = d_code
           GROUP BY d_description
           ORDER BY avg_cost_usd DESC"""
    )
    for description, cases, avg_cost in result.rows:
        print(f"   {description:<18} {cases:>4} cases   {avg_cost:>10.2f} USD")

    print("\n=== Complex scope: clinics that treated an encounter above 3 500 USD ===")
    research.execute('SET SCOPE = "FROM encounters WHERE e_cost > 3500"')
    print(
        "   D resolved from the scope query:",
        research.dataset(),
        "(non-granting clinics are pruned again at query time)",
    )
    expensive = research.query(
        "SELECT e_age_group, COUNT(*) AS cases FROM encounters "
        "WHERE e_cost > 3500 GROUP BY e_age_group ORDER BY cases DESC"
    )
    for row in expensive.rows:
        print("   ", row)

    print("\n=== One clinic's own view stays in its own currency ===")
    lakeside = mt.connect(3, optimization="o4")  # EUR clinic, default scope = own data
    own = lakeside.query("SELECT COUNT(*) AS n, AVG(e_cost) AS avg_cost FROM encounters")
    count, avg_cost = own.rows[0]
    print(f"   Lakeside Clinic: {count} encounters, average cost {avg_cost:.2f} EUR")


if __name__ == "__main__":
    main()
