#!/usr/bin/env python3
"""Regenerate the paper's response-time tables (Tables 3-5 and 7-9).

Examples::

    python examples/reproduce_tables.py --table 5
    python examples/reproduce_tables.py --table 3 --queries 1 6 22 --sf 0.005
    python examples/reproduce_tables.py --all --queries 1 6 22

The harness always prints absolute response times (seconds) and the same grid
relative to the single-tenant TPC-H baseline, which is the comparison the
paper draws.
"""

import argparse

from repro.bench import render_relative_table, render_table, run_table
from repro.bench.tables import TABLE_CONFIGS
from repro.mth.queries import ALL_QUERY_IDS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--table", choices=sorted(TABLE_CONFIGS), help="which table to regenerate")
    parser.add_argument("--all", action="store_true", help="regenerate all six tables")
    parser.add_argument(
        "--queries", type=int, nargs="*", default=list(ALL_QUERY_IDS),
        help="subset of MT-H queries (default: all 22)",
    )
    parser.add_argument("--sf", type=float, default=None, help="scale factor (default 0.002)")
    parser.add_argument("--tenants", type=int, default=10, help="number of tenants (default 10)")
    parser.add_argument("--repetitions", type=int, default=1, help="timing repetitions per cell")
    arguments = parser.parse_args()

    table_ids = sorted(TABLE_CONFIGS) if arguments.all else [arguments.table]
    if table_ids == [None]:
        parser.error("pass --table N or --all")

    for table_id in table_ids:
        result = run_table(
            table_id,
            query_ids=tuple(arguments.queries),
            scale_factor=arguments.sf,
            tenants=arguments.tenants,
            repetitions=arguments.repetitions,
        )
        print(render_table(result, arguments.queries))
        print()
        print(render_relative_table(result, arguments.queries))
        print()


if __name__ == "__main__":
    main()
