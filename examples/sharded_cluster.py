#!/usr/bin/env python3
"""Sharded cluster demo: the gateway serving MT-H over a 4-shard cluster.

Loads a micro MT-H instance onto a tenant-partitioned cluster of four
in-memory engine backends, then drives cross-tenant queries through the
query gateway and shows, per query, which execution strategy the cluster
planner picked:

* ``single-shard``      — ``D'`` lands on one shard (or only global tables),
* ``row-stream``        — scatter + UNION merge,
* ``partial-aggregate`` — scatter + SUM/COUNT/MIN/MAX (AVG = SUM÷COUNT)
  re-aggregation,
* ``federated``         — pull base rows into a scratch backend (the
  always-correct fallback for non-decomposable queries).

Each result is verified row-set-identical against a single-backend load of
the same data.

Run with ``PYTHONPATH=src python examples/sharded_cluster.py``; pass
``--shards N`` to change the cluster size and ``--backend sqlite`` to build
the cluster out of SQLite shards.
"""

import argparse

from repro.backends import normalized_rows
from repro.mth.dbgen import generate
from repro.mth.loader import load_mth
from repro.mth.queries import query_text

TENANTS = 8
SCALE_FACTOR = 0.001
QUERY_IDS = (1, 3, 6, 11, 18, 22)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4, help="shard count (default: 4)")
    parser.add_argument(
        "--backend",
        choices=("engine", "sqlite"),
        default="engine",
        help="backend family of each shard (default: engine)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    print(
        f"loading MT-H: sf={SCALE_FACTOR}, {TENANTS} tenants, "
        f"{args.shards} x {args.backend} shards ..."
    )
    data = generate(scale_factor=SCALE_FACTOR, seed=7)
    cluster = load_mth(
        data=data, tenants=TENANTS, distribution="uniform",
        backend=args.backend, shards=args.shards,
    )
    reference = load_mth(data=data, tenants=TENANTS, distribution="uniform")
    backend = cluster.middleware.backend
    print(f"cluster: {backend!r}")
    for table in ("customer", "orders", "lineitem"):
        per_shard = [
            shard.table_rowcount(table) for shard in backend.shard_connections
        ]
        print(f"  {table:9s} rows per shard: {per_shard} (total {sum(per_shard)})")

    gateway = cluster.middleware.gateway(cache_size=128)
    research = gateway.session(1, optimization="o4", scope="IN ()")  # all tenants
    tenant_session = gateway.session(2, optimization="o4", scope="IN (2)")

    print("\ncross-tenant research session (D' = all tenants):")
    for query_id in QUERY_IDS:
        result = research.query(query_text(query_id))
        plan = backend.last_plan
        check = reference.middleware.connect(1, optimization="o4")
        check.set_scope("IN ()")
        expected = check.query(query_text(query_id))
        verdict = "ok" if normalized_rows(result) == normalized_rows(expected) else "MISMATCH"
        print(f"  Q{query_id:<2} {len(result.rows):>5} rows  {plan.describe():<55} {verdict}")

    print("\nsingle-tenant session (D' = {2} -> single-shard fast path):")
    for query_id in (1, 6):
        result = tenant_session.query(query_text(query_id))
        print(f"  Q{query_id:<2} {len(result.rows):>5} rows  {backend.last_plan.describe()}")

    warm = gateway.cache_stats
    research.query(query_text(1))  # warm repeat
    print(
        f"\ngateway cache: {gateway.cache_stats.hits} hits "
        f"({gateway.cache_stats.hits - warm.hits} from the warm repeat), "
        f"dialect key = {backend.dialect.name!r}"
    )
    gateway.close()
    backend.close()


if __name__ == "__main__":
    main()
