#!/usr/bin/env python3
"""MT-H result validation (§5 of the paper).

Loads an MT-H database plus the single-tenant TPC-H baseline over the same
generated data, then checks — for every optimization level — that all 22
queries produce identical results when asked by tenant 1 (universal formats)
with a scope covering every tenant.

Examples::

    python examples/validate_mth.py
    python examples/validate_mth.py --sf 0.002 --tenants 20 --distribution zipf
"""

import argparse
import time

from repro.mth import generate, load_mth, load_tpch_baseline, validate_queries


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sf", type=float, default=0.001, help="scale factor (default 0.001)")
    parser.add_argument("--tenants", type=int, default=10, help="number of tenants (default 10)")
    parser.add_argument(
        "--distribution", choices=("uniform", "zipf"), default="uniform",
        help="tenant share distribution",
    )
    parser.add_argument(
        "--levels", nargs="*", default=["canonical", "o1", "o2", "o3", "o4", "inl-only"],
        help="optimization levels to validate",
    )
    arguments = parser.parse_args()

    print(f"generating TPC-H data at sf={arguments.sf} ...")
    data = generate(scale_factor=arguments.sf)
    print("  rows:", data.row_counts())

    print(f"loading MT-H with T={arguments.tenants} ({arguments.distribution}) and the baseline ...")
    instance = load_mth(data=data, tenants=arguments.tenants, distribution=arguments.distribution)
    baseline = load_tpch_baseline(data=data)

    all_ok = True
    for level in arguments.levels:
        connection = instance.middleware.connect(1, optimization=level)
        connection.set_scope("IN ()")  # D = all tenants
        started = time.perf_counter()
        report = validate_queries(connection, baseline)
        elapsed = time.perf_counter() - started
        status = "OK " if report.ok else "FAIL"
        print(f"  [{status}] {level:<10} {report.summary()}  ({elapsed:.1f}s)")
        for query_id, message in sorted(report.failed.items()):
            all_ok = False
            print(f"         Q{query_id}: {message}")

    if all_ok:
        print("\nall optimization levels reproduce the single-tenant TPC-H results exactly")
    else:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
