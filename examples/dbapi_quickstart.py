#!/usr/bin/env python3
"""DB-API quickstart: the MT-H workload through ``repro.api`` cursors.

Walks the PEP 249 driver surface end to end on a micro MT-H instance:

1. **Q1 and Q6 via cursors** — the paper's headline queries executed with
   their literals lifted into ``?``/``:name`` bind parameters,
2. **an ``executemany`` bulk insert** — one parameterized INSERT compiled
   once, executed per binding vector through the per-owner MTSQL rewrite,
3. **one prepared query, three client connections** — the same param-bound
   statement re-executed with different bindings for three gateway
   connections of one tenant: the gateway compiles it exactly once and
   serves every further execution from the rewrite cache (warm hits),
4. **streaming ``fetchmany``** — first rows of a scan arrive without
   materializing the result set.

Run with ``PYTHONPATH=src python examples/dbapi_quickstart.py``.
"""

import repro.api as api
from repro.mth.loader import load_mth

TENANTS = 4
SCALE_FACTOR = 0.001

Q1_PARAM = """
SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
       AVG(l_extendedprice) AS avg_price, COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= ?
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

Q6_PARAM = """
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= :start AND l_shipdate < :start + INTERVAL '1' YEAR
  AND l_discount BETWEEN :low AND :high AND l_quantity < :cap
"""

REPRICE = (
    "SELECT o_orderpriority, COUNT(*) AS n FROM orders "
    "WHERE o_totalprice > ? GROUP BY o_orderpriority ORDER BY o_orderpriority"
)


def main() -> None:
    print(f"loading MT-H (sf={SCALE_FACTOR}, tenants={TENANTS}) ...")
    mth = load_mth(scale_factor=SCALE_FACTOR, tenants=TENANTS)
    middleware = mth.middleware
    gateway = middleware.gateway(cache_size=128)

    # -- 1. Q1 / Q6 through a cursor, literals lifted to parameters ---------
    connection = api.connect(gateway, client=1, optimization="o4", scope="IN ()")
    cursor = connection.cursor()

    cursor.execute(Q1_PARAM, (api.Date(1998, 9, 2),))
    print("\nQ1 (parameterized, all tenants):")
    for row in cursor:
        print("  ", row)

    cursor.execute(
        Q6_PARAM,
        {"start": api.Date(1994, 1, 1), "low": 0.05, "high": 0.07, "cap": 24},
    )
    print("\nQ6 (named parameters):", cursor.fetchone())

    # -- 2. executemany bulk insert ------------------------------------------
    scoped = api.connect(gateway, client=1, optimization="o4", scope="IN (1)")
    bulk = scoped.cursor()
    bulk.execute("SELECT MAX(s_suppkey) FROM supplier")
    base = int(bulk.fetchone()[0]) + 1
    bulk.executemany(
        "INSERT INTO supplier VALUES (?, ?, ?, ?, ?, ?, ?)",
        [
            (base + offset, f"Supplier#{base + offset}", "addr", 1, "phone", 0.0, "bulk")
            for offset in range(5)
        ],
    )
    print(f"\nbulk insert: {bulk.rowcount} suppliers via executemany")
    scoped.close()

    # -- 3. one compilation, three clients, many bindings ---------------------
    compilations_before = middleware.compiler.stats.compilations
    hits_before = gateway.cache_stats.hits
    clients = [
        api.connect(gateway, client=1, optimization="o4", scope="IN ()")
        for _ in range(3)
    ]
    print("\nre-executing one param-bound query for 3 client connections:")
    for index, client_connection in enumerate(clients):
        client_cursor = client_connection.cursor()
        for threshold in (1000.0, 20000.0, 100000.0):
            client_cursor.execute(REPRICE, (threshold,))
            total = sum(row[1] for row in client_cursor.fetchall())
            print(f"  client {index}: o_totalprice > {threshold:>9}: {total} orders")
    stats = middleware.compiler.stats
    print(
        f"compilations: {stats.compilations - compilations_before} "
        f"(9 executions), gateway warm hits: "
        f"{gateway.cache_stats.hits - hits_before}"
    )
    for client_connection in clients:
        client_connection.close()

    # -- 4. streaming fetchmany ----------------------------------------------
    cursor.execute("SELECT l_orderkey, l_extendedprice FROM lineitem")
    first = cursor.fetchmany(3)
    print(f"\nstreaming scan: first {len(first)} rows before materialization:")
    for row in first:
        print("  ", row)
    cursor.close()
    connection.close()
    gateway.close()


if __name__ == "__main__":
    main()
