#!/usr/bin/env python3
"""Network serving demo: concurrent async clients against a repro.server.

Loads a micro MT-H instance onto a 2-shard tenant-partitioned cluster,
boots the asyncio serving tier in front of a query gateway, and drives it
with a fleet of concurrent network clients issuing **parameterized**
Q1/Q6-class statements over the wire protocol (one compiled artifact per
statement shape serves every binding).  The fleet is deliberately larger
than the admission capacity, so some requests are shed with a retryable
``SERVER_BUSY`` and retried after a backoff — the script reports

* aggregate throughput and p50/p95/p99 client-observed latency,
* the admission counters: admitted, shed, peak in-flight / peak queued,
* a demand-sized streaming FETCH draining a scan batch by batch.

Run with ``PYTHONPATH=src python examples/network_serving.py``; pass
``--clients N`` to change the fleet size and ``--shards N`` for the
cluster width.
"""

import argparse
import asyncio
import time

from repro.errors import ServerBusyError
from repro.gateway import summarize
from repro.mth.loader import load_mth
from repro.server import ServerConfig, SyncSession, serve
from repro.server.client import AsyncSession

TENANTS = 4
SCALE_FACTOR = 0.001
REQUESTS_EACH = 3

#: parameterized Q6: revenue change for a discount/quantity band
Q6 = (
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem "
    "WHERE l_discount BETWEEN ? AND ? AND l_quantity < ?"
)
#: parameterized Q1-class pricing summary with a bound quantity filter
Q1 = (
    "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, "
    "COUNT(*) AS count_ord FROM lineitem WHERE l_quantity < ? "
    "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=24,
                        help="concurrent network clients (default: 24)")
    parser.add_argument("--shards", type=int, default=2,
                        help="shards in the backing cluster (default: 2)")
    return parser.parse_args()


def bindings(index: int) -> tuple[str, tuple]:
    """Deterministic per-request statement + parameter vector."""
    if index % 2 == 0:
        return Q6, (0.02 + (index % 5) * 0.01, 0.08, 20 + index % 10)
    return Q1, (15 + index % 15,)


async def run_fleet(host: str, port: int, clients: int) -> tuple[list, int]:
    """Drive the server with ``clients`` concurrent async sessions."""
    latencies: list[float] = []
    sheds = 0

    async def one_client(index: int) -> None:
        nonlocal sheds
        session = await AsyncSession.open(
            host, port, client=1 + index % TENANTS, optimization="o4"
        )
        try:
            for request in range(REQUESTS_EACH):
                sql, parameters = bindings(index + request)
                began = time.perf_counter()
                while True:
                    try:
                        result = await session.execute(sql, parameters=parameters)
                        break
                    except ServerBusyError:
                        sheds += 1  # retryable: back off and try again
                        await asyncio.sleep(0.005)
                latencies.append(time.perf_counter() - began)
                assert result.columns
        finally:
            await session.close()

    await asyncio.gather(*(one_client(i) for i in range(clients)))
    return latencies, sheds


def stream_demo(host: str, port: int) -> None:
    """Drain a scan through demand-sized FETCH batches (bounded memory)."""
    session = SyncSession(host, port, client=1, scope="IN ()", optimization="o4")
    try:
        stream = session.execute_incremental("SELECT * FROM lineitem")
        batches = rows = 0
        while True:
            batch = stream.fetchmany(64)
            if not batch:
                break
            batches += 1
            rows += len(batch)
        print(f"streaming fetch: {rows} rows in {batches} batches of <= 64 "
              f"(neither side ever held the full result)")
    finally:
        session.close()


def main() -> None:
    args = parse_args()
    print(f"loading MT-H: sf={SCALE_FACTOR}, {TENANTS} tenants, "
          f"{args.shards}-shard cluster ...")
    mth = load_mth(
        scale_factor=SCALE_FACTOR, tenants=TENANTS,
        distribution="uniform", shards=args.shards,
    )
    gateway = mth.middleware.gateway(cache_size=256)
    # a tiny admission budget so the demo visibly sheds under the burst
    # (fleet-per-tenant exceeds concurrency + queue_depth)
    config = ServerConfig(concurrency=2, queue_depth=1, workers=8,
                          request_timeout=30.0)
    with serve(gateway, config=config) as server:
        host, port = server.address
        total = args.clients * REQUESTS_EACH
        print(f"server on {host}:{port} — {args.clients} concurrent clients x "
              f"{REQUESTS_EACH} parameterized Q1/Q6 requests "
              f"(admission: {config.concurrency} in flight + "
              f"{config.queue_depth} queued per tenant)\n")

        began = time.perf_counter()
        latencies, client_sheds = asyncio.run(
            run_fleet(host, port, args.clients)
        )
        elapsed = time.perf_counter() - began

        assert len(latencies) == total  # every request answered eventually
        summary = summarize(latencies)
        print(f"throughput: {total / elapsed:.1f} requests/s "
              f"({total} requests in {elapsed:.2f}s)")
        print(f"latency: p50 {summary.p50 * 1e3:.2f}ms, "
              f"p95 {summary.p95 * 1e3:.2f}ms, p99 {summary.p99 * 1e3:.2f}ms")

        snapshot = server.admission_snapshot()
        print(f"admission: {snapshot.describe()}")
        print(f"clients saw {client_sheds} retryable SERVER_BUSY answers; "
              f"every one retried successfully\n")

        stream_demo(host, port)
    gateway.close()


if __name__ == "__main__":
    main()
