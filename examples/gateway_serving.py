#!/usr/bin/env python3
"""Serving demo: N concurrent tenant sessions through the query gateway.

Loads a micro MT-H instance, opens one gateway session per tenant plus a
cross-tenant "research" session, and pushes two rounds of a mixed query
workload through the concurrent executor:

* round 1 is cold — every statement pays parse + rewrite + optimization,
* round 2 is warm — the rewrite cache serves every statement.

The script prints per-round throughput/latency and the cache hit rate, and
verifies that warm results equal the cold ones.

Run with ``PYTHONPATH=src python examples/gateway_serving.py``; pass
``--backend sqlite`` to serve the workload from the SQLite execution backend
instead of the in-memory engine.
"""

import argparse

from repro.backends import BACKEND_NAMES
from repro.bench.workload import WorkloadConfig, load_workload
from repro.mth.queries import query_text

TENANTS = 4
SCALE_FACTOR = 0.001
QUERY_IDS = (1, 3, 6, 10, 22)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="engine",
        help="execution backend serving the workload (default: engine)",
    )
    return parser.parse_args()


def build_batches(gateway, tenants):
    """One session per tenant (own scope) plus one all-tenant research session."""
    batches = []
    for ttid in range(1, tenants + 1):
        session = gateway.session(ttid, optimization="o4", scope=f"IN ({ttid})")
        batches.append((session, [query_text(query_id) for query_id in QUERY_IDS]))
    research = gateway.session(1, optimization="o4", scope="IN ()")
    batches.append((research, [query_text(query_id) for query_id in QUERY_IDS]))
    return batches


def main() -> None:
    args = parse_args()
    print(f"loading MT-H: sf={SCALE_FACTOR}, {TENANTS} tenants, backend={args.backend} ...")
    workload = load_workload(
        WorkloadConfig(
            scale_factor=SCALE_FACTOR,
            tenants=TENANTS,
            distribution="uniform",
            backend=args.backend,
        )
    )
    gateway = workload.gateway(cache_size=512)
    batches = build_batches(gateway, TENANTS)
    sessions = len(batches)
    backend = workload.backend
    print(
        f"{sessions} sessions x {len(QUERY_IDS)} queries, O4, concurrent, "
        f"served by the {backend.name!r} backend ({backend.dialect.name} dialect)\n"
    )

    cold = gateway.run_concurrent(batches)
    print(f"cold (parse + rewrite + execute): {cold.describe()}")

    # micro-scale rounds are scheduler-noisy; report the median of three warm
    # rounds (benchmarks/test_ablation_gateway_cache.py has controlled numbers)
    warm_rounds = [gateway.run_concurrent(batches) for _ in range(3)]
    warm = sorted(warm_rounds, key=lambda report: report.latency.mean)[1]
    print(f"warm (rewrite cache hits):        {warm.describe()}")

    for session, _ in batches:
        for first, second in zip(cold.outcomes_for(session), warm.outcomes_for(session)):
            if first.error is not None or second.error is not None:
                raise SystemExit(f"statement failed on {session!r}: {first.error or second.error}")
            if first.result.rows != second.result.rows:
                raise SystemExit(f"warm/cold mismatch on {session!r}: {first.statement[:60]}")
    print("\nwarm results identical to cold results: ok")

    stats = gateway.cache_stats
    print(
        f"cache: {stats.hits} hits / {stats.lookups} lookups "
        f"(hit rate {stats.hit_rate:.1%}), {stats.misses} misses, "
        f"{stats.evictions} evictions"
    )
    speedup = cold.latency.mean / warm.latency.mean if warm.latency.mean else float("inf")
    print(f"mean per-statement latency: cold {cold.latency.mean * 1e3:.2f}ms -> "
          f"warm {warm.latency.mean * 1e3:.2f}ms ({speedup:.1f}x)")
    for session in gateway.sessions:
        print(f"  {session!r}")


if __name__ == "__main__":
    main()
