#!/usr/bin/env python3
"""Regenerate the tenant-scaling figures (Figure 5 and Figure 6).

Examples::

    python examples/tenant_scaling.py                         # Figure 5 (postgres profile)
    python examples/tenant_scaling.py --profile system_c      # Figure 6
    python examples/tenant_scaling.py --tenants 1 10 100 1000 --sf 0.005
"""

import argparse

from repro.bench import render_scaling, run_tenant_scaling
from repro.bench.scaling import DEFAULT_TENANT_COUNTS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--profile", choices=("postgres", "system_c"), default="postgres",
        help="postgres = Figure 5, system_c = Figure 6",
    )
    parser.add_argument(
        "--tenants", type=int, nargs="*", default=list(DEFAULT_TENANT_COUNTS),
        help="tenant counts to sweep",
    )
    parser.add_argument(
        "--queries", type=int, nargs="*", default=[1, 6, 22],
        help="queries to measure (default: the conversion-intensive Q1, Q6, Q22)",
    )
    parser.add_argument("--sf", type=float, default=None, help="scale factor (default 0.002)")
    arguments = parser.parse_args()

    result = run_tenant_scaling(
        profile=arguments.profile,
        tenant_counts=tuple(arguments.tenants),
        query_ids=tuple(arguments.queries),
        scale_factor=arguments.sf,
    )
    print(render_scaling(result))


if __name__ == "__main__":
    main()
