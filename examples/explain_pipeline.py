"""Demo: the staged MTSQL→SQL compilation pipeline and ``explain()``.

Loads a tiny MT-H instance and prints the staged compilation of two MT-H
queries — Q6 (a conversion-heavy aggregate) and Q22 (conversions compared
against a scalar sub-query) — at O1 (trivial optimizations only) vs. O4 (all
passes), showing per-stage wall time, AST-size deltas, fired-rule counts,
the conversion-call census and the SQL after every stage.

Run with ``PYTHONPATH=src python examples/explain_pipeline.py``.
"""

from repro.mth.dbgen import generate
from repro.mth.loader import load_mth
from repro.mth.queries import query_text

QUERIES = (6, 22)
LEVELS = ("o1", "o4")


def main() -> None:
    """Print the staged compilation of two MT-H queries at O1 vs. O4."""
    print("loading a tiny MT-H instance (4 tenants, uniform shares)...")
    data = generate(scale_factor=0.001, seed=7)
    mth = load_mth(data=data, tenants=4, distribution="uniform")

    for query_id in QUERIES:
        for level in LEVELS:
            connection = mth.middleware.connect(1, optimization=level)
            connection.set_scope("IN (1, 3)")
            report = connection.explain(query_text(query_id))
            banner = f" MT-H Q{query_id} at {level} "
            print()
            print(banner.center(72, "="))
            print(report.render())

        # the point of the optimization levels, in one number:
        o1 = mth.middleware.connect(1, optimization="o1")
        o1.set_scope("IN (1, 3)")
        o4 = mth.middleware.connect(1, optimization="o4")
        o4.set_scope("IN (1, 3)")
        census_o1 = o1.compile(query_text(query_id)).conversions.final_total
        census_o4 = o4.compile(query_text(query_id)).conversions.final_total
        print()
        print(
            f"Q{query_id}: conversion calls left for the DBMS — "
            f"o1: {census_o1}, o4: {census_o4}"
        )


if __name__ == "__main__":
    main()
